// Package tracing stubs perdnn/internal/obs/tracing for analyzer
// fixtures: same import path, same span surface, none of the real
// machinery.
package tracing

import "time"

type TraceID uint64

type SpanID uint64

type Stage string

type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Stage  Stage
	Node   string
	Start  time.Duration
	End    time.Duration
	Run    string
}

func (s Span) WithRun(run string) Span {
	s.Run = run
	return s
}

type Tracer struct {
	next  uint64
	spans []Span
}

func (t *Tracer) Record(trace TraceID, parent SpanID, stage Stage, node string, start, end time.Duration) SpanID {
	t.next++
	id := SpanID(t.next)
	t.spans = append(t.spans, Span{Trace: trace, ID: id, Parent: parent, Stage: stage, Node: node, Start: start, End: end})
	return id
}

func (t *Tracer) RecordWith(trace TraceID, id, parent SpanID, stage Stage, node string, start, end time.Duration) {
	t.spans = append(t.spans, Span{Trace: trace, ID: id, Parent: parent, Stage: stage, Node: node, Start: start, End: end})
}

func (t *Tracer) Spans() []Span { return t.spans }
