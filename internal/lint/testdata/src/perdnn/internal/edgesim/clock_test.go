package edgesim

import "time"

// Test files may read the wall clock (e.g. to bound test runtime); the
// simdeterminism analyzer must stay silent here.
func testDeadline() time.Time {
	return time.Now().Add(5 * time.Second)
}
