package edgesim

import (
	"time"

	"perdnn/internal/simdep"
)

// transitively exercises the call-graph upgrade: nondeterminism hidden
// behind a non-sim helper is flagged at the simulation call site.
func transitively(t0 time.Time) time.Duration {
	_ = simdep.Pure(1, 2)     // ok: deterministic helper
	return simdep.Elapsed(t0) // want "reaches nondeterminism: simdep.Elapsed → simdep.wallStep → time.Since"
}
