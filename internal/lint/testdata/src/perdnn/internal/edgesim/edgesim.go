// Package edgesim is the simdeterminism fixture: it occupies a simulation
// package's import path so the analyzer applies, and declares the Env type
// the envmutate fixtures write through.
package edgesim

import (
	"math/rand"
	"sort"
	"time"

	"perdnn/internal/obs"
)

// Env mirrors the real Env's immutability contract for envmutate fixtures.
type Env struct {
	Seed int64
	Name string
}

type world struct {
	journal *obs.Journal
	now     time.Duration
}

// event is a journal-emission helper, recognized by name convention.
func (w *world) event(t obs.EventType, server, target int) {
	w.journal.Record(obs.NewEvent(w.now, t, 0, server, target, 0, 0))
}

func wallClock() time.Duration {
	start := time.Now() // want "wall-clock time.Now"
	defer func() {
		_ = time.Since(start) // want "wall-clock time.Since"
	}()
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
	return 0
}

func globalRand(n int) int {
	return rand.Intn(n) // want "package-level rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "package-level rand.Shuffle"
}

func seededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed)) // ok: run-scoped generator
	return rng.Intn(n)
}

func emitUnsorted(w *world, caches map[int]int64) {
	for id, b := range caches { // want "map iteration order reaches the journal"
		w.journal.Record(obs.NewEvent(w.now, "migration_ordered", 0, id, -1, 0, b))
	}
}

func emitViaHelper(w *world, caches map[int]int64) {
	for id := range caches { // want "map iteration order reaches the journal"
		w.event("handoff", id, -1)
	}
}

func accumulateEvents(caches map[int]int64, now time.Duration) []obs.Event {
	var out []obs.Event
	for id, b := range caches { // want "map iteration order reaches the journal"
		out = append(out, obs.NewEvent(now, "cold_start", 0, id, -1, 0, b))
	}
	return out
}

func emitSorted(w *world, caches map[int]int64) {
	ids := make([]int, 0, len(caches))
	for id := range caches { // ok: feeds only the sorted slice below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids { // ok: slice iteration is ordered
		w.event("handoff", id, -1)
	}
}

func countOnly(caches map[int]int64) int {
	n := 0
	for range caches { // ok: no loop variables, order cannot leak
		n++
	}
	return n
}
