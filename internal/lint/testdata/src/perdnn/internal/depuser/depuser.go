// Package depuser lives under perdnn/internal/, so nodeprecated holds it
// to the no-deprecated-calls rule.
package depuser

import "perdnn/internal/depapi"

// Use calls the deprecated surface three ways: flagged, flagged method,
// and sanctioned under vet-ignore (the equivalence-test escape hatch).
func Use() int {
	a := depapi.Old() // want "call to deprecated depapi.Old"
	var t depapi.T
	b := t.OldMethod() // want "call to deprecated depapi.T.OldMethod"
	//perdnn:vet-ignore nodeprecated equivalence check pins old == new behavior
	c := depapi.Old()
	return a + b + c + depapi.New()
}

// LegacyUse is itself deprecated, so its calls into Old are exempt.
//
// Deprecated: legacy wrapper kept for compatibility.
func LegacyUse() int { return depapi.Old() }
