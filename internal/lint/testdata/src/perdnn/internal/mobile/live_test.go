package mobile

import "context"

// Tests may mint root contexts; ctxflow must stay silent here.
func testRoot() context.Context {
	return context.Background()
}
