// Package mobile is the ctxflow fixture: it occupies a live-path import
// path so the analyzer applies.
package mobile

import (
	"context"
	"net"
)

type Client struct {
	conn net.Conn
}

// DialContext is the ctx-first form every live-path entry point must take.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr) // want "context.Background"
}

func DialShim(addr string) (*Client, error) {
	//perdnn:vet-ignore ctxflow deprecated compatibility shim supplies the root context
	return DialContext(context.Background(), addr)
}

func Query(c *Client, q string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = ctx
	_ = q
	return nil
}

// UploadAllContext mirrors the streaming-upload entry point: ctx first,
// cancelable mid-window, no diagnostics.
func (c *Client) UploadAllContext(ctx context.Context) (int, error) {
	_ = ctx
	return 0, nil
}

// UploadAll is the deprecated lockstep shim shape: minting the root
// context is allowed only under an explicit vet-ignore directive.
func (c *Client) UploadAll() (int, error) {
	//perdnn:vet-ignore ctxflow deprecated compatibility shim supplies the root context
	return c.UploadAllContext(context.Background())
}

// StreamPending puts the window size ahead of the context, breaking the
// ctx-first convention streaming callers rely on.
func (c *Client) StreamPending(window int, ctx context.Context) (int, error) { // want "context.Context must be the first parameter"
	_ = window
	_ = ctx
	return 0, nil
}

func Probe(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "dials the network without accepting a context.Context"
}

func pending() context.Context {
	return context.TODO() // want "context.TODO"
}

// probeHelper is unexported: the bare-dial rule covers the exported API
// surface only, so this stays silent.
func probeHelper(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 0)
}
