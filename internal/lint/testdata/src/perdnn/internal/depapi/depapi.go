// Package depapi is the nodeprecated fixture API: it declares functions
// carrying standard Deprecated: notes alongside their replacements.
package depapi

// Old is the legacy entry point.
//
// Deprecated: use New.
func Old() int { return New() }

// New is the replacement.
func New() int { return 1 }

// OldShim chains to Old; deprecated callers may call deprecated callees.
//
// Deprecated: use New.
func OldShim() int { return Old() }

// T carries one deprecated and one current method.
type T struct{}

// OldMethod is the legacy method.
//
// Deprecated: use NewMethod.
func (T) OldMethod() int { return 0 }

// NewMethod is the replacement.
func (T) NewMethod() int { return 0 }
