// Package simdep is a non-simulation helper package used by the
// transitive simdeterminism fixture: Elapsed is legitimate here, but a
// simulation package that calls it reaches the wall clock and is flagged
// at its own call site.
package simdep

import "time"

// Elapsed reads the wall clock — fine outside the simulator.
func Elapsed(since time.Time) time.Duration {
	return wallStep(since)
}

// wallStep adds one more hop so the fixture proves multi-level closure.
func wallStep(since time.Time) time.Duration {
	return time.Since(since)
}

// Pure is deterministic; calls from simulation packages are fine.
func Pure(a, b int) int {
	return a + b
}
