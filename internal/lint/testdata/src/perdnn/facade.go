// Package perdnn is the facadeopts fixture: a stub of the public facade
// mixing conforming entry points with knob-bag signatures the analyzer
// must flag.
package perdnn

import "time"

type options struct {
	slowdown float64
	maxHops  int
}

// Option configures a facade call.
type Option func(*options)

// WithSlowdown is the sanctioned way to pass a tuning scalar. Option
// constructors themselves take one scalar each; that is the point.
func WithSlowdown(s float64) Option { return func(o *options) { o.slowdown = s } }

// WithMaxHops caps the chain length.
func WithMaxHops(k int) Option { return func(o *options) { o.maxHops = k } }

// ModelProfile stands in for the real profile type.
type ModelProfile struct{}

// ModelName is a named type: it documents itself in a signature and never
// counts as a bare tuning scalar.
type ModelName string

// Objective is a named enum; also exempt.
type Objective int

// Plan is the conforming shape: subject first, knobs as options.
func Plan(prof *ModelProfile, opts ...Option) error { return nil }

// TrainEstimator takes one scalar whose meaning IS the function's subject;
// a single scalar is allowed.
func TrainEstimator(seed int64) error { return nil }

// CityDefaults mixes named types with one scalar; still fine.
func CityDefaults(model ModelName, obj Objective, radius float64) error { return nil }

// PartitionAt grew two positional knobs instead of options.
func PartitionAt(prof *ModelProfile, slowdown float64, maxHops int) error { return nil } // want "2 positional tuning parameters"

// RunLoaded stacks a duration and booleans — a knob bag.
func RunLoaded(prof *ModelProfile, deadline time.Duration, retry bool, cache bool) error { return nil } // want "3 positional tuning parameters"

// sweep is unexported: internal helpers may take whatever they want.
func sweep(workers int, shuffle bool) {}

// Tune is a method, not a facade entry point.
func (o *options) Tune(a int, b float64) {}
