// Package freeuser sits outside perdnn, perdnn/internal/..., and
// perdnn/cmd/..., so nodeprecated leaves its calls alone even though the
// callee is deprecated (examples/ get the same latitude).
package freeuser

import "perdnn/internal/depapi"

// Use may call the deprecated surface freely.
func Use() int { return depapi.Old() }
