// Package senterr exercises the sentinel-error discipline analyzer.
package senterr

import (
	"errors"
	"fmt"
	"strings"

	"perdnn/internal/core"
)

func compareEq(err error) bool {
	return err == core.ErrServerDown // want "use errors.Is"
}

func compareNeq(err error) bool {
	return err != core.ErrMasterDown // want "use errors.Is"
}

func compareIs(err error) bool {
	return errors.Is(err, core.ErrServerDown) // ok: the sanctioned form
}

func compareNil() bool {
	return core.ErrServerDown == nil // ok: nil checks are not identity matching
}

func compareOther(err error) bool {
	return err == core.NotASentinel // ok: not an Err* sentinel
}

func textEq(err error) bool {
	return err.Error() == "edge server down" // want "match errors with errors.Is"
}

func textContains(err error) bool {
	return strings.Contains(err.Error(), "down") // want "strings.Contains over err.Error"
}

func textPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "edge") // want "strings.HasPrefix over err.Error"
}

func wrapWrongVerb(addr string, err error) error {
	return fmt.Errorf("edge %s: %v: %w", addr, core.ErrServerDown, err) // want "verb other than %w"
}

func wrapMissing(addr string) error {
	return fmt.Errorf("edge %s: %s", addr, core.ErrMasterDown) // want "verb other than %w"
}

func wrapRight(addr string, err error) error {
	return fmt.Errorf("edge %s: %w: %w", addr, core.ErrServerDown, err) // ok: sentinel under %w
}
