// Package envuser exercises the Env-immutability analyzer.
package envuser

import "perdnn/internal/edgesim"

func mutateField(env *edgesim.Env) {
	env.Seed = 7 // want "write to Seed through"
}

func mutateIncDec(env *edgesim.Env) {
	env.Seed++ // want "write to Seed through"
}

func mutateOpAssign(env *edgesim.Env) {
	env.Name += "x" // want "write to Name through"
}

func replaceWhole(env *edgesim.Env) {
	*env = edgesim.Env{} // want "store through"
}

func variant(env *edgesim.Env) edgesim.Env {
	v := *env
	v.Seed = 9 // ok: writes to a value copy are the documented idiom
	return v
}

func construct(seed int64) *edgesim.Env {
	return &edgesim.Env{Seed: seed} // ok: composite literals build new values
}
