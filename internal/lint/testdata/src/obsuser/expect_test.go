package obsuser

import "perdnn/internal/obs"

// Tests may state expected events as literals; obsjournal must stay
// silent here.
func expectedEvents() []obs.Event {
	return []obs.Event{
		{Type: "handoff", Server: -1, Target: 0},
	}
}
