// Package obsuser exercises the fixed-shape journal-event analyzer.
package obsuser

import (
	"time"

	"perdnn/internal/obs"
)

func emitLiteral(j *obs.Journal, now time.Duration) {
	j.Record(obs.Event{T: now, Type: "handoff"}) // want "ad-hoc obs.Event literal"
}

func buildLiteral(now time.Duration) obs.Event {
	return obs.Event{ // want "ad-hoc obs.Event literal"
		T:      now,
		Type:   "cold_start",
		Server: 3,
	}
}

func emitConstructed(j *obs.Journal, now time.Duration) {
	j.Record(obs.NewEvent(now, "handoff", 1, 0, -1, 0, 0)) // ok: constructor states every field
}

func labelRun(e obs.Event) obs.Event {
	return e.WithRun("fig9/resnet") // ok: combinator preserves shape
}
