// Package staleuser is the stale-suppression fixture: a vet-ignore that
// suppresses nothing in a clean run, and one naming an analyzer that does
// not exist. TestStaleAndUnknownIgnores loads it directly (the want
// harness cannot annotate directive lines, since a trailing comment would
// become part of the directive's free-form reason).
package staleuser

import "context"

//perdnn:vet-ignore ctxflow nothing here violates ctxflow anymore
func Fine(ctx context.Context) context.Context { return ctx }

//perdnn:vet-ignore nosuchanalyzer typo'd analyzer name
func AlsoFine() {}
