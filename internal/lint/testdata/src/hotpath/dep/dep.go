// Package dep proves hotpathalloc crosses package boundaries: Grow is
// unremarkable on its own, but hot (and therefore flagged) because
// hotpath.Leaky reaches it.
package dep

func Grow() []int {
	return make([]int, 8) // want "make allocates"
}
