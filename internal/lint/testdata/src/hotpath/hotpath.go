// Package hotpath is the hotpathalloc fixture: functions annotated
// //perdnn:hotpath must not reach allocation sites; unannotated functions
// may allocate freely.
package hotpath

import (
	"fmt"

	"hotpath/dep"
)

type cfg struct{ n int }

// Sink is implemented by sliceSink; hot calls through it exercise the
// conservative interface fan-out.
type Sink interface{ Put(v int) }

type sliceSink struct{ buf []int }

func (s *sliceSink) Put(v int) {
	s.buf = make([]int, v) // want "make allocates"
}

// GlobalSink receives hot-path values.
var GlobalSink Sink

// scratch is a caller-owned buffer; appends into it are the sanctioned
// amortized idiom and must not be flagged.
var scratch []int

//perdnn:hotpath inner scoring loop
func Score(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
		scratch = append(scratch, x) // ok: amortized append into owned scratch
	}
	if total < 0 {
		panic(fmt.Sprintf("negative total %d", total)) // ok: panic argument is cold
	}
	return total
}

//perdnn:hotpath
func Leaky(xs []int, name string) (int, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input %q", name) // ok: error-returning branch is cold
	}
	out := make([]int, len(xs)) // want "make allocates"
	copy(out, xs)
	id := "id-" + name // want "string concatenation allocates"
	_ = id
	fresh := append([]int(nil), xs...) // want "append to a fresh or nil slice"
	_ = fresh
	c := &cfg{n: len(xs)} // want "composite literal allocates"
	_ = c
	box := any(len(xs)) // want "interface conversion boxes"
	_ = box
	total := 0
	go func() { total++ }()          // want "go statement"
	f := func() int { return total } // want "closure captures"
	_ = f
	helper()
	GlobalSink.Put(total)
	_ = dep.Grow()
	return total, nil
}

//perdnn:hotpath warm-up is suppressed at the site below
func Warmed(xs []int) int {
	//perdnn:vet-ignore hotpathalloc one-time scratch warm-up, amortized across calls
	grown := make([]int, 0, len(xs))
	_ = grown
	return len(xs)
}

func helper() {
	_ = new(cfg) // want "new allocates"
}

// coldPathOnly is hot but allocates only on failure paths, so it is clean.
//
//perdnn:hotpath
func coldPathOnly(ok bool) error {
	if !ok {
		return fmt.Errorf("boom") // ok: cold
	}
	return nil
}

// notHot allocates freely: without the directive nothing is reported.
func notHot() []int {
	return make([]int, 8)
}

// Handler makes notHot address-taken, so calls through func values of the
// same signature conservatively fan out to it (callgraph tests assert
// this; hotpathalloc deliberately does not traverse such edges).
var Handler = notHot

func callsThrough(fp func() []int) []int { return fp() }

// pingA/pingB form a call cycle; reachability must terminate on it.
func pingA(n int) {
	if n > 0 {
		pingB(n - 1)
	}
}

func pingB(n int) {
	if n > 0 {
		pingA(n - 1)
	}
}
