// Package spanuser exercises the span half of the journal-shape analyzer.
package spanuser

import (
	"time"

	"perdnn/internal/obs/tracing"
)

func buildLiteral(now time.Duration) tracing.Span {
	return tracing.Span{ // want "ad-hoc tracing.Span literal"
		Trace: 1,
		Stage: "query",
		Start: now,
	}
}

func appendLiteral(spans []tracing.Span, now time.Duration) []tracing.Span {
	return append(spans, tracing.Span{Trace: 2, ID: 9, End: now}) // want "ad-hoc tracing.Span literal"
}

func recordConstructed(tr *tracing.Tracer, now time.Duration) {
	tr.Record(1, 0, "query", "client/0", 0, now) // ok: Record allocates the ID
}

func recordPreallocated(tr *tracing.Tracer, now time.Duration) {
	tr.RecordWith(1, 7, 0, "query", "client/0", 0, now) // ok: explicit identity fields
}

func labelRun(s tracing.Span) tracing.Span {
	return s.WithRun("fig9/resnet") // ok: combinator preserves shape
}
