package spanuser

import "perdnn/internal/obs/tracing"

// Tests may state expected spans as literals; obsjournal must stay
// silent here.
func expectedSpans() []tracing.Span {
	return []tracing.Span{
		{Trace: 1, ID: 1, Stage: "query", Node: "client/0"},
	}
}
