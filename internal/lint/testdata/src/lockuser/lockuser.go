// Package lockuser is the lockhygiene fixture: blocking operations under
// a held sync.Mutex/RWMutex and unreleased locks are flagged; balanced
// regions and non-blocking polls are not.
package lockuser

import (
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

func (s *S) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *S) SleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
}

func (s *S) RecvUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while s.mu is held"
	s.mu.Unlock()
	return v
}

func (s *S) SendAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n // ok: lock released first
}

func (s *S) TransitiveWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain() // want "call to lockuser.S.drain blocks while s.mu is held"
}

func (s *S) drain() {
	for range s.ch { // ok: no lock held in this function
	}
}

func (s *S) Leak() {
	s.mu.Lock() // want "never released"
	s.n++
}

func (s *S) BranchRelease(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	<-s.ch // ok: every path released before blocking
	return n
}

func (s *S) NonBlockingPoll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // ok: default clause makes this a poll
	case v := <-s.ch:
		s.n = v
	default:
	}
}

func (s *S) BlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while s.mu is held"
	case v := <-s.ch:
		s.n = v
	case s.ch <- s.n:
	}
}

func (s *S) ReadersDontBlock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func (s *S) RLockLeak() {
	s.rw.RLock() // want "never released"
	_ = s.n
}

func (s *S) WaitGroupUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

func (s *S) Sanctioned() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//perdnn:vet-ignore lockhygiene fixture exercises a line-above suppression
	time.Sleep(time.Millisecond)
}

func (s *S) SanctionedInline(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() //perdnn:vet-ignore lockhygiene fixture exercises a same-line suppression
	s.mu.Unlock()
}
