// Package notsim uses the wall clock and global randomness freely: it is
// not a simulation package, so simdeterminism must stay silent.
package notsim

import (
	"math/rand"
	"time"
)

func Now() time.Duration {
	return time.Since(time.Now())
}

func Roll(n int) int {
	return rand.Intn(n)
}
