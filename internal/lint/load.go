package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked unit under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
	Error       *struct{ Err string }
}

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir is the module root to run `go list` in ("" = current directory).
	Dir string
	// Tests includes in-package _test.go files in the analyzed packages.
	// External (_test package) files are never loaded.
	Tests bool
}

// Load lists, parses, and type-checks the packages matching patterns
// (e.g. "./...") using compiler export data for all imports, so loading a
// package costs one parse+check of its own files only. The build cache
// must be able to produce export data, i.e. the tree must compile.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	if cfg.Tests {
		args = append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			// Test variants list as "path [path.test]"; strip the suffix so
			// either spelling resolves.
			exports[trimTestVariant(p.ImportPath)] = p.Export
		}
		if !p.DepOnly && !p.Standard && trimTestVariant(p.ImportPath) == p.ImportPath {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		names := t.GoFiles
		if cfg.Tests {
			names = append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		}
		if len(names) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		info := newTypesInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// trimTestVariant maps "pkg [pkg.test]" to "pkg".
func trimTestVariant(path string) string {
	if i := bytes.IndexByte([]byte(path), ' '); i >= 0 {
		return path[:i]
	}
	return path
}
