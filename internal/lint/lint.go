// Package lint is perdnn's in-tree static-analysis suite. It enforces the
// invariants the simulator's headline numbers rest on — bit-for-bit
// determinism of runs and journals, sentinel-error discipline, context
// plumbing on the live path, Env immutability, and fixed-field-order
// journal events — as compile-time checks instead of review lore.
//
// The suite is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, diagnostics, testdata
// fixtures with "// want" comments) but is built only on the standard
// library's go/ast and go/types, because the build environment pins the
// module to a zero-dependency footprint. Packages under analysis are
// loaded from `go list -export` output, so type information comes from
// the same compiler export data the build uses.
//
// Run the whole suite with:
//
//	go run ./cmd/perdnn-vet ./...
//
// A finding can be suppressed at a specific line — for documented
// exceptions such as deprecated compatibility shims — with a directive
// comment on the same line or the line above:
//
//	//perdnn:vet-ignore ctxflow deprecated bare-dial shim
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape follows
// golang.org/x/tools/go/analysis so the suite can migrate to the real
// framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc states the invariant the analyzer encodes, first line short.
	Doc string
	// Run reports the analyzer's findings for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts carries run-wide interprocedural state — the call graph and
	// memoized derived closures — shared by every pass of the run.
	Facts *Facts

	diags   *[]Diagnostic
	ignores *ignoreIndex
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an ignore directive for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.covers(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// invariants (wall-clock use, context.Background) are relaxed in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//perdnn:vet-ignore"

// A directive is one parsed vet-ignore comment. Used tracks whether any
// diagnostic was actually suppressed by it during the run, so stale
// directives can be reported instead of accumulating silently.
type directive struct {
	pos   token.Position
	names []string
	used  bool
}

// ignoreIndex holds every vet-ignore directive of the run, indexed by
// file and line. The index is global (all packages), because an
// interprocedural analyzer visiting package A may position a diagnostic
// in package B, where the suppression lives.
type ignoreIndex struct {
	byLine map[string]map[int][]*directive
	list   []*directive
}

// covers reports whether a directive for analyzer suppresses a diagnostic
// at pos — on the directive's own line or the line below, so it can trail
// a statement or sit above a declaration — and marks the directive used.
func (ix *ignoreIndex) covers(analyzer string, pos token.Position) bool {
	if ix == nil {
		return false
	}
	lines := ix.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range lines[ln] {
			for _, name := range d.names {
				if name == analyzer || name == "all" {
					d.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// add indexes one directive at pos.
func (ix *ignoreIndex) add(pos token.Position, names []string) {
	d := &directive{pos: pos, names: names}
	ix.list = append(ix.list, d)
	lines := ix.byLine[pos.Filename]
	if lines == nil {
		lines = map[int][]*directive{}
		ix.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], d)
}

// buildIgnoreIndex scans comments for vet-ignore directives. The directive
// grammar is "//perdnn:vet-ignore name1,name2 reason..." — everything after
// the comma-separated analyzer list is a free-form justification.
func buildIgnoreIndex(pkgs []*Package) *ignoreIndex {
	ix := &ignoreIndex{byLine: map[string]map[int][]*directive{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					var names []string
					for _, name := range strings.Split(fields[0], ",") {
						if name = strings.TrimSpace(name); name != "" {
							names = append(names, name)
						}
					}
					if len(names) > 0 {
						ix.add(pkg.Fset.Position(c.Slash), names)
					}
				}
			}
		}
	}
	return ix
}

// staleDirectiveDiags audits the run's directives after all analyzers
// finished. Two failure modes are reported, both under the reserved
// analyzer name "vet-ignore":
//
//   - a directive naming an analyzer that does not exist (typo'd
//     suppressions silently suppress nothing);
//   - a directive naming an analyzer that ran over the whole input yet
//     suppressed no diagnostic — the finding it once justified is gone,
//     so the directive is dead weight and must be removed.
//
// Staleness is only judged for analyzers in the run set ("all" only when
// the full suite ran), so running a single analyzer over a fixture never
// flags the other analyzers' legitimate suppressions.
func staleDirectiveDiags(ix *ignoreIndex, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for name := range ran {
		known[name] = true
	}
	fullSuite := true
	for _, a := range All() {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	var diags []Diagnostic
	for _, d := range ix.list {
		for _, name := range d.names {
			switch {
			case !known[name]:
				diags = append(diags, Diagnostic{
					Analyzer: "vet-ignore",
					Pos:      d.pos,
					Message:  fmt.Sprintf("vet-ignore names unknown analyzer %q: it suppresses nothing", name),
				})
			case d.used:
				// The directive earned its keep this run.
			case name == "all" && fullSuite, name != "all" && ran[name]:
				diags = append(diags, Diagnostic{
					Analyzer: "vet-ignore",
					Pos:      d.pos,
					Message:  fmt.Sprintf("stale vet-ignore for %q: no diagnostic here to suppress; remove the directive", name),
				})
			}
		}
	}
	return diags
}

// RunAnalyzers applies every analyzer to every package and returns all
// diagnostics sorted by position. Analyzer errors (not findings) abort.
// The run shares one Facts (call graph + memoized closures) and one
// global ignore index across all packages; after the last analyzer,
// unused and unknown ignore directives are reported as findings.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := buildIgnoreIndex(pkgs)
	facts := NewFacts(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				diags:     &diags,
				ignores:   ignores,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	diags = append(diags, staleDirectiveDiags(ignores, analyzers)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full perdnn-vet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		SentErr,
		CtxFlow,
		EnvMutate,
		ObsJournal,
		FacadeOpts,
		HotPathAlloc,
		LockHygiene,
		NoDeprecated,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Select resolves a comma-separated list of analyzer names (as passed to
// perdnn-vet -run) to analyzers, rejecting unknown names. An empty list
// selects the whole suite.
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := Lookup(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the roster)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return All(), nil
	}
	return out, nil
}
