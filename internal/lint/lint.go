// Package lint is perdnn's in-tree static-analysis suite. It enforces the
// invariants the simulator's headline numbers rest on — bit-for-bit
// determinism of runs and journals, sentinel-error discipline, context
// plumbing on the live path, Env immutability, and fixed-field-order
// journal events — as compile-time checks instead of review lore.
//
// The suite is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, diagnostics, testdata
// fixtures with "// want" comments) but is built only on the standard
// library's go/ast and go/types, because the build environment pins the
// module to a zero-dependency footprint. Packages under analysis are
// loaded from `go list -export` output, so type information comes from
// the same compiler export data the build uses.
//
// Run the whole suite with:
//
//	go run ./cmd/perdnn-vet ./...
//
// A finding can be suppressed at a specific line — for documented
// exceptions such as deprecated compatibility shims — with a directive
// comment on the same line or the line above:
//
//	//perdnn:vet-ignore ctxflow deprecated bare-dial shim
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape follows
// golang.org/x/tools/go/analysis so the suite can migrate to the real
// framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc states the invariant the analyzer encodes, first line short.
	Doc string
	// Run reports the analyzer's findings for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an ignore directive for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.covers(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// invariants (wall-clock use, context.Background) are relaxed in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//perdnn:vet-ignore"

// ignoreIndex maps file -> line -> analyzer names suppressed on that line.
// A directive suppresses findings on its own line and on the line below,
// so it can trail a statement or sit above a declaration.
type ignoreIndex map[string]map[int][]string

func (ix ignoreIndex) covers(analyzer string, pos token.Position) bool {
	lines := ix[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[ln] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// buildIgnoreIndex scans comments for vet-ignore directives. The directive
// grammar is "//perdnn:vet-ignore name1,name2 reason..." — everything after
// the comma-separated analyzer list is a free-form justification.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := ix[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ix[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return ix
}

// RunAnalyzers applies every analyzer to every package and returns all
// diagnostics sorted by position. Analyzer errors (not findings) abort.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
				ignores:   ignores,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full perdnn-vet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		SentErr,
		CtxFlow,
		EnvMutate,
		ObsJournal,
		FacadeOpts,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
