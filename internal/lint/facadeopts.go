package lint

import (
	"go/ast"
	"go/types"
)

// FacadeOpts enforces the public facade's options discipline: an exported
// entry point in the root perdnn package must not grow positional tuning
// parameters — bare scalars like slowdowns, hop budgets, deadlines, and
// feature booleans — because every such parameter is a breaking change
// waiting to happen and reads as noise at call sites ("what is the second
// 3?"). Tuning knobs travel as functional options (WithSlowdown,
// WithMaxHops, ...) on a trailing ...Option, which is what keeps Plan a
// single stable entry point. One bare scalar is allowed: a function whose
// subject IS a number (TrainEstimator(seed)) is fine; two or more means a
// knob bag is forming. Named types (ModelName, Objective) are
// self-documenting and do not count.
var FacadeOpts = &Analyzer{
	Name: "facadeopts",
	Doc:  "facade entry points take ...Option, not positional tuning scalars",
	Run:  runFacadeOpts,
}

func runFacadeOpts(pass *Pass) error {
	if pass.Pkg.Path() != facadePath {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := funcSig(fn)
			params := sig.Params()
			if sig.Variadic() && params.Len() > 0 && isOptionSlice(params.At(params.Len()-1).Type()) {
				continue
			}
			n := 0
			for i := 0; i < params.Len(); i++ {
				if isTuningScalar(params.At(i).Type()) {
					n++
				}
			}
			if n >= 2 {
				pass.Reportf(fd.Name.Pos(),
					"exported facade function %s takes %d positional tuning parameters; take a trailing ...Option (With...) instead",
					fd.Name.Name, n)
			}
		}
	}
	return nil
}

// isOptionSlice reports whether t is []Option of the facade package — the
// type a trailing ...Option parameter has.
func isOptionSlice(t types.Type) bool {
	s, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	return isNamed(s.Elem(), facadePath, "Option")
}

// isTuningScalar reports whether a parameter type is a bare tuning scalar:
// an unnamed numeric or boolean basic type, or time.Duration. Named types
// (ModelName, Objective, geo.ServerID, ...) carry their meaning in the
// signature and are exempt.
func isTuningScalar(t types.Type) bool {
	if isNamed(t, "time", "Duration") {
		return true
	}
	b, ok := types.Unalias(t).(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}
