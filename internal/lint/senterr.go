package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// SentErr enforces the sentinel-error discipline around internal/core's
// typed sentinels (ErrServerDown, ErrMasterDown, ErrRetryBudgetExhausted,
// ErrLocalFallback). The live path wraps these through several layers
// (`%w: %w` chains), so identity comparison and string matching both break
// the moment a wrap is added or a message is reworded. Outside _test.go
// files it reports:
//
//   - `err == core.ErrX` / `err != core.ErrX`: wrapped chains never
//     compare equal; use errors.Is;
//   - `err.Error() == "..."` and strings.Contains/HasPrefix/HasSuffix/
//     EqualFold over err.Error(): error text is presentation, not
//     protocol;
//   - fmt.Errorf passing a core sentinel under a verb other than %w:
//     the sentinel vanishes from the errors.Is chain.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "core sentinel errors must be wrapped with %w and compared with errors.Is",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				checkStringMatch(pass, n)
				checkSentinelWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSentinelCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, side := range [2]ast.Expr{bin.X, bin.Y} {
		if v := coreSentinel(pass.TypesInfo, side); v != nil {
			other := bin.Y
			if side == bin.Y {
				other = bin.X
			}
			if isNilLiteral(pass.TypesInfo, other) {
				continue
			}
			pass.Reportf(bin.Pos(),
				"sentinel core.%s compared with %s: wrapped errors never compare equal, use errors.Is",
				v.Name(), bin.Op)
			return
		}
	}
	// err.Error() == "..." — string matching on rendered error text.
	for _, side := range [2]ast.Expr{bin.X, bin.Y} {
		if errorTextCall(pass.TypesInfo, side) {
			pass.Reportf(bin.Pos(),
				"comparing err.Error() text: match errors with errors.Is/errors.As, not strings")
			return
		}
	}
}

// stringMatchFuncs are the strings helpers that, applied to err.Error(),
// amount to error identity via text.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true,
}

func checkStringMatch(pass *Pass, call *ast.CallExpr) {
	obj := calleeObject(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if errorTextCall(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(),
				"strings.%s over err.Error(): match errors with errors.Is/errors.As, not text",
				fn.Name())
			return
		}
	}
}

// errorTextCall reports whether expr is a call of the Error() method on an
// error value.
func errorTextCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return isErrorType(recv.Type)
}

// checkSentinelWrap flags fmt.Errorf calls that pass a core sentinel under
// a verb other than %w.
func checkSentinelWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(calleeObject(pass.TypesInfo, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass.TypesInfo, call.Args[0])
	verbs := parseVerbs(format)
	for i, arg := range call.Args[1:] {
		v := coreSentinel(pass.TypesInfo, arg)
		if v == nil {
			continue
		}
		if !ok || verbs == nil {
			// Non-constant or indexed format: settle for presence of %w.
			if containsWrapVerb(format) {
				continue
			}
			pass.Reportf(arg.Pos(),
				"sentinel core.%s passed to fmt.Errorf without %%w: it disappears from the errors.Is chain",
				v.Name())
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel core.%s formatted with a verb other than %%w: wrap it so errors.Is still sees it",
				v.Name())
		}
	}
}

func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the verb letter consumed by each successive argument
// of a simple printf format, or nil when the format uses features (indexed
// arguments, * width) that break positional mapping.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '[' || c == '*' {
				return nil
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// wrapVerbRE matches a %w verb, including the indexed form %[1]w.
var wrapVerbRE = regexp.MustCompile(`%(\[\d+\])?w`)

func containsWrapVerb(format string) bool {
	return wrapVerbRE.MatchString(format)
}
