package master

import (
	"log/slog"
	"net"
	"os"
	"sync"
	"testing"

	"perdnn/internal/dnn"
	"perdnn/internal/edged"
	"perdnn/internal/estimator"
	"perdnn/internal/geo"
	"perdnn/internal/gpusim"
	"perdnn/internal/mobile"
	"perdnn/internal/obs"
	"perdnn/internal/obs/tracing"
	"perdnn/internal/profile"
	"perdnn/internal/wire"
)

// The sharded fixture: four edge daemons in a 2x2 cell block, one master
// per shard (Shards=4 puts each edge in its own region), all sharing one
// trained estimator. Built once — master construction is the expensive
// part — and reused across the shard tests.
var (
	shardOnce    sync.Once
	shardErr     error
	shardEdges   []EdgeInfo
	shardEdgeOf  []int // shardEdgeOf[i] = shard owning shardEdges[i]
	shardMasters []*Master
	shardAddrs   []string
)

const numShards = 4

func shardFixture(t *testing.T) {
	t.Helper()
	shardOnce.Do(func() {
		grid := geo.NewHexGrid(50)
		cells := []geo.HexCell{{Q: 0, R: 0}, {Q: 1, R: 0}, {Q: 0, R: 1}, {Q: 1, R: 1}}
		for i, cell := range cells {
			ecfg := edged.DefaultConfig(dnn.ModelMobileNet)
			ecfg.TimeScale = 0
			ecfg.GPUSeed = int64(i + 1)
			esrv, err := edged.New(ecfg)
			if err != nil {
				shardErr = err
				return
			}
			eln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				shardErr = err
				return
			}
			go esrv.Serve(eln) //nolint:errcheck // lives for the test binary
			shardEdges = append(shardEdges, EdgeInfo{Addr: eln.Addr().String(), Location: grid.Center(cell)})
		}

		// Train the estimator once; every shard master shares it.
		est, err := estimator.TrainServerEstimator(profile.ServerTitanXp(), gpusim.DefaultParams(), 1)
		if err != nil {
			shardErr = err
			return
		}

		lns := make([]net.Listener, numShards)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				shardErr = err
				return
			}
			lns[i] = ln
			shardAddrs = append(shardAddrs, ln.Addr().String())
		}
		for i := 0; i < numShards; i++ {
			cfg := DefaultConfig(shardEdges)
			cfg.Shard = i
			cfg.Shards = numShards
			cfg.Peers = shardAddrs
			cfg.Estimator = est
			cfg.Tracer = tracing.NewWallClock()
			cfg.Logger = obs.NewLogger(os.Stderr, slog.LevelWarn, "master")
			m, err := New(cfg)
			if err != nil {
				shardErr = err
				return
			}
			go m.Serve(lns[i]) //nolint:errcheck // lives for the test binary
			shardMasters = append(shardMasters, m)
		}

		// Every master builds the identical shard map; recompute it here to
		// learn which shard owns each edge.
		smap := geo.NewShardMap(shardMasters[0].Placement(), numShards)
		for _, e := range shardEdges {
			sid := shardMasters[0].Placement().ServerAt(e.Location)
			shardEdgeOf = append(shardEdgeOf, smap.ShardOf(sid))
		}
	})
	if shardErr != nil {
		t.Fatal(shardErr)
	}
}

func TestShardConfigValidation(t *testing.T) {
	edges := []EdgeInfo{{Addr: "a", Location: geo.Point{}}, {Addr: "b", Location: geo.Point{X: 90}}}
	cfg := DefaultConfig(edges)
	cfg.Shards = 2
	cfg.Shard = 2
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range shard accepted")
	}
	cfg.Shard = 0
	cfg.Peers = []string{"only-one"}
	if _, err := New(cfg); err == nil {
		t.Error("short peer list accepted")
	}
}

// edgeInShard returns the index of the first fixture edge owned by shard s.
func edgeInShard(t *testing.T, s int) int {
	t.Helper()
	for i, owner := range shardEdgeOf {
		if owner == s {
			return i
		}
	}
	t.Fatalf("no fixture edge in shard %d (ownership %v)", s, shardEdgeOf)
	return -1
}

// TestShardHandoffLive drives the full live handoff path over real TCP: a
// client attached to shard A's master completes a query, walks across the
// region boundary, is handed off to shard B's master transparently inside
// ReportLocationContext, and completes another query planned by the new
// master. The handoff itself is one trace spanning both masters.
func TestShardHandoffLive(t *testing.T) {
	shardFixture(t)
	ctx := t.Context()

	eA := edgeInShard(t, 0)
	fromShard := shardEdgeOf[eA]
	var eB int
	for i, owner := range shardEdgeOf {
		if owner != fromShard {
			eB = i
			break
		}
	}
	toShard := shardEdgeOf[eB]
	mA, mB := shardMasters[fromShard], shardMasters[toShard]
	handoffsBefore := mA.Metrics().Counter("shard_handoffs_total").Value()
	adoptionsBefore := mB.Metrics().Counter("shard_adoptions_total").Value()

	cl, err := mobile.DialContext(ctx, mobile.Config{
		ID:         42,
		Model:      dnn.ModelMobileNet,
		MasterAddr: shardAddrs[fromShard],
		Tracer:     tracing.NewWallClock(),
		Logger:     obs.NewLogger(os.Stderr, slog.LevelWarn, "mobile"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // test teardown

	// Attach to shard A's edge and complete a query before the crossing.
	locA, locB := shardEdges[eA].Location, shardEdges[eB].Location
	if err := cl.ReportLocationContext(ctx, locA); err != nil {
		t.Fatalf("report in home shard: %v", err)
	}
	if got := cl.Metrics().Counter("master_handoffs_total").Value(); got != 0 {
		t.Fatalf("home-shard report re-homed the client %d times", got)
	}
	sidA := mA.Placement().ServerAt(locA)
	if err := cl.ConnectContext(ctx, sidA, shardEdges[eA].Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadAllContext(ctx); err != nil {
		t.Fatal(err)
	}
	if lat, err := cl.QueryContext(ctx); err != nil || lat <= 0 {
		t.Fatalf("query before handoff: lat=%v err=%v", lat, err)
	}

	// Cross the boundary: the report comes back as a redirect, the client
	// re-homes onto shard B's master, and the report lands there.
	if err := cl.ReportLocationContext(ctx, locB); err != nil {
		t.Fatalf("report across boundary: %v", err)
	}
	if got := cl.Metrics().Counter("master_handoffs_total").Value(); got != 1 {
		t.Errorf("client re-homed %d times, want 1", got)
	}
	if got := mA.Metrics().Counter("shard_handoffs_total").Value() - handoffsBefore; got != 1 {
		t.Errorf("shard %d handed off %d clients, want 1", fromShard, got)
	}
	if got := mB.Metrics().Counter("shard_adoptions_total").Value() - adoptionsBefore; got != 1 {
		t.Errorf("shard %d adopted %d clients, want 1", toShard, got)
	}

	// Complete a query after the handoff, planned by the new master.
	sidB := mB.Placement().ServerAt(locB)
	if err := cl.ConnectContext(ctx, sidB, shardEdges[eB].Addr); err != nil {
		t.Fatalf("connect via new master: %v", err)
	}
	if _, err := cl.UploadAllContext(ctx); err != nil {
		t.Fatal(err)
	}
	if lat, err := cl.QueryContext(ctx); err != nil || lat <= 0 {
		t.Fatalf("query after handoff: lat=%v err=%v", lat, err)
	}

	// Each query is one trace: exactly one root query span per trace on the
	// client, and the two queries use distinct traces.
	queryTraces := make(map[tracing.TraceID]int)
	for _, s := range cl.Tracer().Spans() {
		if s.Stage == tracing.StageQuery {
			if s.Parent != 0 {
				t.Errorf("query span %d has parent %d, want root", s.ID, s.Parent)
			}
			queryTraces[s.Trace]++
		}
	}
	if len(queryTraces) != 2 {
		t.Errorf("queries used %d traces, want 2", len(queryTraces))
	}
	for tr, n := range queryTraces {
		if n != 1 {
			t.Errorf("trace %d has %d query roots, want 1", tr, n)
		}
	}

	// The handoff is one trace spanning both masters: the sender's handoff
	// span roots it and the adopter's span parents to the sender's.
	var sent, adopted []tracing.Span
	for _, s := range mA.Tracer().Spans() {
		if s.Stage == tracing.StageHandoff {
			sent = append(sent, s)
		}
	}
	for _, s := range mB.Tracer().Spans() {
		if s.Stage == tracing.StageHandoff {
			adopted = append(adopted, s)
		}
	}
	if len(sent) != 1 || len(adopted) != 1 {
		t.Fatalf("handoff spans: %d sent, %d adopted, want 1 each", len(sent), len(adopted))
	}
	if sent[0].Trace != adopted[0].Trace {
		t.Errorf("handoff split across traces %d and %d", sent[0].Trace, adopted[0].Trace)
	}
	if adopted[0].Parent != sent[0].ID {
		t.Errorf("adoption span parents to %d, want sender span %d", adopted[0].Parent, sent[0].ID)
	}
}

// TestShardRingCrossings is the boundary-crossing property test: a client
// walking a ring through every region experiences exactly one handoff per
// crossing, and after the walk its registration lives on exactly one
// master — never duplicated, never lost.
func TestShardRingCrossings(t *testing.T) {
	shardFixture(t)
	ctx := t.Context()

	handoffsBefore := make([]int64, numShards)
	for i, m := range shardMasters {
		handoffsBefore[i] = m.Metrics().Counter("shard_handoffs_total").Value()
	}

	// Order the edges so consecutive ring stops sit in different shards,
	// then walk the ring three times.
	ring := make([]int, 0, numShards)
	for s := 0; s < numShards; s++ {
		ring = append(ring, edgeInShard(t, s))
	}
	const laps = 3
	path := make([]int, 0, laps*len(ring))
	for lap := 0; lap < laps; lap++ {
		path = append(path, ring...)
	}

	cl, err := mobile.DialContext(ctx, mobile.Config{
		ID:         77,
		Model:      dnn.ModelMobileNet,
		MasterAddr: shardAddrs[shardEdgeOf[path[0]]],
		Logger:     obs.NewLogger(os.Stderr, slog.LevelWarn, "mobile"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // test teardown

	crossings := 0
	cur := shardEdgeOf[path[0]]
	for _, e := range path {
		if shardEdgeOf[e] != cur {
			crossings++
			cur = shardEdgeOf[e]
		}
		if err := cl.ReportLocationContext(ctx, shardEdges[e].Location); err != nil {
			t.Fatalf("report at edge %d: %v", e, err)
		}
	}
	if crossings == 0 {
		t.Fatal("ring never crossed a boundary")
	}

	if got := cl.Metrics().Counter("master_handoffs_total").Value(); got != int64(crossings) {
		t.Errorf("client re-homed %d times for %d crossings", got, crossings)
	}
	var handoffs int64
	for i, m := range shardMasters {
		handoffs += m.Metrics().Counter("shard_handoffs_total").Value() - handoffsBefore[i]
	}
	if handoffs != int64(crossings) {
		t.Errorf("masters handed off %d times for %d crossings", handoffs, crossings)
	}

	// Exactly one master still knows the client: the final region's owner
	// accepts its report, every other master rejects it as unknown.
	last := shardEdges[path[len(path)-1]].Location
	owners := 0
	for i, addr := range shardAddrs {
		conn, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := conn.RoundTrip(&wire.Envelope{
			Type:       wire.MsgTrajectory,
			Trajectory: &wire.Trajectory{ClientID: 77, Points: []geo.Point{last}},
		})
		if err != nil {
			t.Fatalf("probing master %d: %v", i, err)
		}
		if resp.Type == wire.MsgAck && resp.Ack != nil && resp.Ack.OK {
			owners++
			if i != cur {
				t.Errorf("master %d owns the client, want %d", i, cur)
			}
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if owners != 1 {
		t.Errorf("%d masters own the client, want exactly 1", owners)
	}
}
