// Package master implements the live master-server daemon: it tracks
// clients' DNN profiles and trajectories, answers plan requests by pinging
// the target edge server for GPU statistics and running the GPU-aware
// partitioner, and periodically predicts client movement to order proactive
// layer migrations between edge daemons (Section III.B).
package master

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"perdnn/internal/core"
	"perdnn/internal/dnn"
	"perdnn/internal/estimator"
	"perdnn/internal/geo"
	"perdnn/internal/gpusim"
	"perdnn/internal/mobility"
	"perdnn/internal/obs"
	"perdnn/internal/obs/tracing"
	"perdnn/internal/partition"
	"perdnn/internal/profile"
	"perdnn/internal/wire"
)

// EdgeInfo describes one edge server the master orchestrates.
type EdgeInfo struct {
	ID       geo.ServerID
	Addr     string
	Location geo.Point
}

// Config parameterizes the master daemon.
type Config struct {
	// Edges are the managed edge servers.
	Edges []EdgeInfo
	// CellRadius sizes the service cells (50 m).
	CellRadius float64
	// Radius is the proactive-migration radius r.
	Radius float64
	// HistoryLen is the trajectory length n.
	HistoryLen int
	// Link prices client-edge transfers inside plans.
	Link partition.Link
	// MaxHops enables multi-hop pipelined planning: plan responses carry a
	// server chain of up to MaxHops stages assembled from the reachable
	// edges (the requested server first, the rest in ID order), alongside
	// the single-split fields that remain the failover plan. <= 1 keeps the
	// classic single-split behavior.
	MaxHops int
	// Objective selects what multi-hop plans optimize: latency (default)
	// or pipeline throughput (bottleneck-stage minimization). Ignored when
	// MaxHops <= 1.
	Objective partition.Objective
	// EstimatorSeed seeds the offline estimator training.
	EstimatorSeed int64
	// Shard and Shards enable shard-owner mode: this master owns region
	// Shard of Shards total, computed by geo.NewShardMap over the full
	// edge placement (every shard master is configured with the complete
	// edge set so the map is identical everywhere). Trajectory reports for
	// clients that crossed out of the region are handed off to the owning
	// peer (MsgShardHandoff) and answered with a redirect; predicted
	// migration targets in another region are routed to that region's
	// master (MsgShardMigrate). Shards <= 1 keeps single-master behavior.
	Shard  int
	Shards int
	// Peers[i] is the listen address of shard i's master; required (and
	// must have length Shards) when Shards > 1. Peers[Shard] names this
	// master and is only used in redirects.
	Peers []string
	// Estimator, when non-nil, is used instead of training one at startup
	// (load it from perdnn-estimator's JSON output).
	Estimator *estimator.ServerEstimator
	// Logger receives the daemon's structured log output; nil defaults to
	// info-level logging on stderr tagged with component=master.
	Logger *slog.Logger
	// Tracer records request-scoped spans (register, plan, migration
	// orders); incoming envelopes that carry a span context link the
	// master's spans under the client's trace. Nil disables tracing.
	Tracer *tracing.Tracer
}

// DefaultConfig returns the paper's parameters for a given edge set.
func DefaultConfig(edges []EdgeInfo) Config {
	return Config{
		Edges:         edges,
		CellRadius:    50,
		Radius:        100,
		HistoryLen:    5,
		Link:          partition.LabWiFi(),
		EstimatorSeed: 1,
	}
}

// Master is a running master daemon.
type Master struct {
	cfg       Config
	placement *geo.Placement
	edgesByID map[geo.ServerID]EdgeInfo
	est       *estimator.ServerEstimator
	predictor mobility.Predictor
	log       *slog.Logger
	met       *obs.Registry
	tr        *tracing.Tracer
	edges     *wire.Pool    // reused conns for stats pings and migration orders
	smap      *geo.ShardMap // region ownership map; nil in single-master mode
	peers     *wire.Pool    // shard-to-shard conns for handoffs and migrations; nil unless sharded

	mu       sync.Mutex
	planners map[dnn.ModelName]*core.Planner
	clients  map[int]*clientState

	ln        net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

type clientState struct {
	model   dnn.ModelName
	history []geo.Point
}

// New builds a master for the given configuration. The execution-time
// estimator is trained offline at construction (Section III.C.1); the
// mobility predictor defaults to dead reckoning and can be replaced with a
// trained SVR via SetPredictor.
func New(cfg Config) (*Master, error) {
	if len(cfg.Edges) == 0 {
		return nil, errors.New("master: no edge servers configured")
	}
	if cfg.CellRadius <= 0 || cfg.Radius <= 0 || cfg.HistoryLen <= 0 {
		return nil, fmt.Errorf("master: bad geometry config %+v", cfg)
	}
	if cfg.Shards > 1 {
		if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
			return nil, fmt.Errorf("master: shard %d outside [0,%d)", cfg.Shard, cfg.Shards)
		}
		if len(cfg.Peers) != cfg.Shards {
			return nil, fmt.Errorf("master: %d peer addresses for %d shards", len(cfg.Peers), cfg.Shards)
		}
	}
	pts := make([]geo.Point, 0, len(cfg.Edges))
	for _, e := range cfg.Edges {
		pts = append(pts, e.Location)
	}
	pl := geo.NewPlacement(geo.NewHexGrid(cfg.CellRadius), pts)

	est := cfg.Estimator
	if est == nil {
		trained, err := estimator.TrainServerEstimator(profile.ServerTitanXp(), gpusim.DefaultParams(), cfg.EstimatorSeed)
		if err != nil {
			return nil, fmt.Errorf("master: training estimator: %w", err)
		}
		est = trained
	}
	lin := &mobility.Linear{}
	lin.FitPlacement(pl)

	byID := make(map[geo.ServerID]EdgeInfo, len(cfg.Edges))
	for _, e := range cfg.Edges {
		id := pl.ServerAt(e.Location)
		if id == geo.NoServer {
			return nil, fmt.Errorf("master: edge %q has no cell", e.Addr)
		}
		info := e
		info.ID = id
		byID[id] = info
	}

	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(os.Stderr, slog.LevelInfo, "master")
	}
	m := &Master{
		cfg:       cfg,
		placement: pl,
		edgesByID: byID,
		est:       est,
		predictor: lin,
		log:       logger,
		met:       obs.NewRegistry(),
		tr:        cfg.Tracer,
		planners:  make(map[dnn.ModelName]*core.Planner, 4),
		clients:   make(map[int]*clientState, 8),
		closed:    make(chan struct{}),
	}
	m.edges = wire.NewRegisteredPool(m.met, "edge")
	if cfg.Shards > 1 {
		m.smap = geo.NewShardMap(pl, cfg.Shards)
		m.peers = wire.NewRegisteredPool(m.met, "shard")
	}
	return m, nil
}

// nodeMaster is the master's span track name.
const nodeMaster = "master"

// Metrics exposes the daemon's metrics registry (requests, plans,
// migration orders) for the -debug-addr endpoint.
func (m *Master) Metrics() *obs.Registry { return m.met }

// Tracer exposes the daemon's span recorder (nil when tracing is off).
func (m *Master) Tracer() *tracing.Tracer { return m.tr }

// recordStage closes a stage span on the master's track. When the
// request carried a span context the span joins the client's trace as a
// child; otherwise it starts a trace of its own.
func (m *Master) recordStage(rc tracing.SpanContext, stage tracing.Stage, start time.Duration) {
	trace, parent := rc.Trace, rc.Span
	if trace == 0 {
		trace, parent = m.tr.NewTrace(), 0
	}
	m.tr.Record(trace, parent, stage, nodeMaster, start, m.tr.Now())
}

// SetPredictor swaps in a trained mobility predictor.
func (m *Master) SetPredictor(p mobility.Predictor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.predictor = p
}

// Placement exposes the server placement (for clients to find their cell).
func (m *Master) Placement() *geo.Placement { return m.placement }

// EdgeAddr returns the daemon address of an edge server.
func (m *Master) EdgeAddr(id geo.ServerID) (string, bool) {
	e, ok := m.edgesByID[id]
	return e.Addr, ok
}

// ServeContext accepts connections until Close is called or ctx is
// canceled. Every connection handler — including the outbound migration
// orders and stats pings it triggers — inherits ctx, so canceling it
// interrupts in-flight work, closes the listener, and drains.
func (m *Master) ServeContext(ctx context.Context, ln net.Listener) error {
	m.mu.Lock()
	m.ln = ln
	m.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		if err := m.Close(); err != nil {
			m.log.Warn("shutdown", "err", err)
		}
	})
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-m.closed:
				m.wg.Wait()
				return nil
			default:
				return fmt.Errorf("master: accept: %w", err)
			}
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handle(ctx, wire.NewConn(conn))
		}()
	}
}

// Serve accepts connections until Close.
//
// Deprecated: use ServeContext, which ties the daemon's lifetime and every
// in-flight exchange to the caller's context.
func (m *Master) Serve(ln net.Listener) error {
	//perdnn:vet-ignore ctxflow deprecated compatibility shim supplies the root context
	return m.ServeContext(context.Background(), ln)
}

// Close stops the daemon. It is idempotent and safe to call concurrently
// with ServeContext's own context-driven shutdown.
func (m *Master) Close() error {
	var err error
	m.closeOnce.Do(func() {
		close(m.closed)
		if perr := m.edges.Close(); perr != nil {
			m.log.Warn("closing edge pool", "err", perr)
		}
		if m.peers != nil {
			if perr := m.peers.Close(); perr != nil {
				m.log.Warn("closing shard pool", "err", perr)
			}
		}
		m.mu.Lock()
		ln := m.ln
		m.mu.Unlock()
		if ln != nil {
			err = ln.Close()
		}
	})
	return err
}

func (m *Master) handle(ctx context.Context, c *wire.Conn) {
	defer func() {
		if err := c.Close(); err != nil {
			m.log.Warn("closing conn", "err", err)
		}
	}()
	for {
		req, err := c.RecvContext(ctx)
		if err != nil {
			return
		}
		m.met.Counter("requests_total").Inc()
		resp := m.dispatch(ctx, req)
		if err := c.SendContext(ctx, resp); err != nil {
			return
		}
	}
}

func ackErr(err error) *wire.Envelope {
	if err != nil {
		return &wire.Envelope{Type: wire.MsgAck, Ack: &wire.Ack{OK: false, Error: err.Error()}}
	}
	return &wire.Envelope{Type: wire.MsgAck, Ack: &wire.Ack{OK: true}}
}

func (m *Master) dispatch(ctx context.Context, req *wire.Envelope) *wire.Envelope {
	switch req.Type {
	case wire.MsgRegister:
		if req.Register == nil {
			return ackErr(errors.New("master: register without body"))
		}
		start := m.tr.Now()
		err := m.register(req.Register)
		m.recordStage(req.Trace, tracing.StageRegister, start)
		return ackErr(err)
	case wire.MsgTrajectory:
		if req.Trajectory == nil {
			return ackErr(errors.New("master: trajectory without body"))
		}
		redirect, err := m.trajectory(ctx, req.Trajectory)
		if redirect != nil {
			return redirect
		}
		return ackErr(err)
	case wire.MsgShardHandoff:
		if req.Handoff == nil {
			return ackErr(errors.New("master: shard handoff without body"))
		}
		start := m.tr.Now()
		err := m.adoptClient(req.Handoff)
		m.recordStage(req.Trace, tracing.StageHandoff, start)
		return ackErr(err)
	case wire.MsgShardMigrate:
		if req.ShardMig == nil {
			return ackErr(errors.New("master: shard migrate without body"))
		}
		return ackErr(m.acceptShardMigration(ctx, req.ShardMig))
	case wire.MsgPlanRequest:
		if req.PlanReq == nil {
			return ackErr(errors.New("master: plan request without body"))
		}
		start := m.tr.Now()
		resp, err := m.plan(ctx, req.PlanReq)
		m.recordStage(req.Trace, tracing.StagePlan, start)
		if err != nil {
			return ackErr(err)
		}
		return &wire.Envelope{Type: wire.MsgPlanResponse, PlanResp: resp}
	default:
		return ackErr(fmt.Errorf("master: unexpected message type %d", req.Type))
	}
}

// register records a client and builds its planner from the model's DNN
// profile.
func (m *Master) register(r *wire.Register) error {
	m.met.Counter("clients_registered_total").Inc()
	m.log.Info("client registered", "client", r.ClientID, "model", string(r.Model))
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ensurePlannerLocked(r.Model); err != nil {
		return err
	}
	if cs, ok := m.clients[r.ClientID]; ok && cs.model == r.Model {
		// Idempotent re-registration — in particular a client re-homing
		// onto this master after a shard handoff. The adopted trajectory
		// history survives, so prediction resumes without a warm-up gap.
		return nil
	}
	m.clients[r.ClientID] = &clientState{model: r.Model}
	return nil
}

// ensurePlannerLocked builds the model's planner from its DNN profile if
// one does not exist yet. Callers hold m.mu.
func (m *Master) ensurePlannerLocked(model dnn.ModelName) error {
	if _, ok := m.planners[model]; ok {
		return nil
	}
	mod, err := dnn.ZooModel(model)
	if err != nil {
		return err
	}
	prof := profile.NewModelProfile(mod, profile.ClientODROID(), profile.ServerTitanXp())
	pl, err := core.NewPlanner(prof, m.est, m.cfg.Link)
	if err != nil {
		return err
	}
	m.planners[model] = pl
	return nil
}

// trajectory updates a client's history and triggers proactive migration.
// In shard-owner mode, a client whose latest point crossed out of this
// master's region is handed off to the owning peer; the report is then
// answered with the returned non-nil redirect envelope instead of an Ack.
func (m *Master) trajectory(ctx context.Context, t *wire.Trajectory) (*wire.Envelope, error) {
	m.met.Counter("trajectory_points_total").Add(int64(len(t.Points)))
	m.mu.Lock()
	cs, ok := m.clients[t.ClientID]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: unknown client %d", t.ClientID)
	}
	cs.history = append(cs.history, t.Points...)
	if len(cs.history) > m.cfg.HistoryLen {
		cs.history = cs.history[len(cs.history)-m.cfg.HistoryLen:]
	}
	recent := make([]geo.Point, len(cs.history))
	copy(recent, cs.history)
	model := cs.model
	pred := m.predictor
	m.mu.Unlock()

	if m.smap != nil && len(recent) > 0 {
		if to := m.smap.ShardAt(recent[len(recent)-1]); to != m.cfg.Shard {
			return m.handoffClient(ctx, t.ClientID, model, to, recent)
		}
	}

	if len(recent) < 2 {
		return nil, nil
	}
	cur := m.placement.ServerAt(recent[len(recent)-1])
	pol := &core.MigrationPolicy{
		Predictor:    pred,
		Placement:    m.placement,
		Radius:       m.cfg.Radius,
		HistoryLen:   m.cfg.HistoryLen,
		TTLIntervals: 5,
	}
	targets, ok := pol.Targets(recent, cur)
	if !ok || cur == geo.NoServer {
		return nil, nil
	}
	curAddr, ok := m.EdgeAddr(cur)
	if !ok {
		return nil, nil
	}
	for _, tid := range targets {
		if m.smap != nil {
			if owner := m.smap.ShardOf(tid); owner != m.cfg.Shard {
				// The predicted destination sits in another region: its
				// owner has the live view of that region's edges, so route
				// the order there instead of planning against a foreign GPU.
				m.orderShardMigration(ctx, model, t.ClientID, curAddr, tid, owner)
				continue
			}
		}
		if err := m.orderMigration(ctx, model, t.ClientID, curAddr, tid); err != nil {
			m.met.Counter("migration_errors_total").Inc()
			m.log.Warn("migration order failed", "client", t.ClientID, "target", int(tid), "err", err)
			continue
		}
		m.met.Counter("migrations_ordered_total").Inc()
		m.log.Debug("migration ordered", "client", t.ClientID, "target", int(tid))
	}
	return nil, nil
}

// handoffClient transfers ownership of a client that crossed into another
// shard's region: the owning peer adopts the registration and trajectory
// history over MsgShardHandoff, the local state is dropped, and the
// client's report is answered with a redirect — a MsgShardHandoff envelope
// naming the new master's address, with no history attached. When the peer
// cannot be reached the master keeps ownership (nil redirect, nil error):
// the client stays served here and the next report retries the handoff.
func (m *Master) handoffClient(ctx context.Context, client int, model dnn.ModelName, to int, history []geo.Point) (*wire.Envelope, error) {
	addr := m.cfg.Peers[to]
	hctx, cancel := context.WithTimeout(ctx, wire.DefaultSendTimeout)
	defer cancel()
	// One trace per handoff, rooted at the sending master; the context
	// rides the request so the peer's adoption span links under it.
	ht := m.tr.NewTrace()
	span := m.tr.NewSpanID()
	start := m.tr.Now()
	resp, err := m.peers.RoundTrip(hctx, addr, &wire.Envelope{
		Type: wire.MsgShardHandoff,
		Handoff: &wire.ShardHandoff{
			ClientID:  client,
			Model:     model,
			FromShard: m.cfg.Shard,
			ToShard:   to,
			Addr:      addr,
			History:   history,
		},
		Trace: tracing.SpanContext{Trace: ht, Span: span},
	})
	if err == nil && (resp.Ack == nil || !resp.Ack.OK) {
		err = fmt.Errorf("master: shard %d rejected handoff", to)
	}
	if err != nil {
		m.met.Counter("shard_handoff_errors_total").Inc()
		m.log.Warn("shard handoff failed; keeping client", "client", client, "to", to, "err", err)
		return nil, nil
	}
	m.mu.Lock()
	delete(m.clients, client)
	m.mu.Unlock()
	m.tr.RecordWith(ht, span, 0, tracing.StageHandoff, nodeMaster, start, m.tr.Now())
	m.met.Counter("shard_handoffs_total").Inc()
	m.log.Info("client handed off", "client", client, "to", to, "addr", addr)
	return &wire.Envelope{
		Type: wire.MsgShardHandoff,
		Handoff: &wire.ShardHandoff{
			ClientID:  client,
			Model:     model,
			FromShard: m.cfg.Shard,
			ToShard:   to,
			Addr:      addr,
		},
	}, nil
}

// adoptClient installs a client handed off by a peer shard master: the
// model's planner is built if this is the region's first client of that
// model, and the registration resumes with the sender's trajectory history
// so mobility prediction continues without a warm-up gap.
func (m *Master) adoptClient(h *wire.ShardHandoff) error {
	if m.smap == nil {
		return errors.New("master: shard handoff sent to an unsharded master")
	}
	if h.ToShard != m.cfg.Shard {
		return fmt.Errorf("master: handoff addressed to shard %d, this is shard %d", h.ToShard, m.cfg.Shard)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ensurePlannerLocked(h.Model); err != nil {
		return err
	}
	hist := make([]geo.Point, len(h.History))
	copy(hist, h.History)
	if len(hist) > m.cfg.HistoryLen {
		hist = hist[len(hist)-m.cfg.HistoryLen:]
	}
	m.clients[h.ClientID] = &clientState{model: h.Model, history: hist}
	m.met.Counter("shard_adoptions_total").Inc()
	m.log.Info("client adopted", "client", h.ClientID, "from", h.FromShard)
	return nil
}

// orderShardMigration routes a predicted migration whose destination
// region belongs to another shard: that shard's master plans against its
// own edge and orders the client's current edge (at curAddr, in this
// master's region) to push the layers. Failures are logged, not returned —
// proactive migration is best-effort, like the local ordering path.
func (m *Master) orderShardMigration(ctx context.Context, model dnn.ModelName, client int, curAddr string, target geo.ServerID, owner int) {
	ctx, cancel := context.WithTimeout(ctx, wire.DefaultSendTimeout)
	defer cancel()
	resp, err := m.peers.RoundTrip(ctx, m.cfg.Peers[owner], &wire.Envelope{
		Type: wire.MsgShardMigrate,
		ShardMig: &wire.ShardMigrate{
			ClientID:   client,
			Model:      model,
			Target:     target,
			SourceAddr: curAddr,
		},
	})
	if err == nil && (resp.Ack == nil || !resp.Ack.OK) {
		reason := "rejected"
		if resp.Ack != nil && resp.Ack.Error != "" {
			reason = resp.Ack.Error
		}
		err = fmt.Errorf("master: shard %d: %s", owner, reason)
	}
	if err != nil {
		m.met.Counter("migration_errors_total").Inc()
		m.log.Warn("cross-shard migration failed", "client", client, "target", int(target), "owner", owner, "err", err)
		return
	}
	m.met.Counter("shard_migrations_out_total").Inc()
	m.log.Debug("cross-shard migration routed", "client", client, "target", int(target), "owner", owner)
}

// acceptShardMigration handles a migration order routed from another
// shard: this master owns the destination region, so it plans against the
// target edge's live GPU statistics and tells the client's current edge
// (in the sender's region) to push the layers. Layers carried in the
// message are a precomputed fallback, used only when local planning fails.
func (m *Master) acceptShardMigration(ctx context.Context, sm *wire.ShardMigrate) error {
	if m.smap == nil {
		return errors.New("master: shard migrate sent to an unsharded master")
	}
	if owner := m.smap.ShardOf(sm.Target); owner != m.cfg.Shard {
		return fmt.Errorf("master: server %d owned by shard %d, this is shard %d", sm.Target, owner, m.cfg.Shard)
	}
	tAddr, ok := m.EdgeAddr(sm.Target)
	if !ok {
		return fmt.Errorf("master: no address for server %d", sm.Target)
	}
	m.mu.Lock()
	err := m.ensurePlannerLocked(sm.Model)
	planner := m.planners[sm.Model]
	m.mu.Unlock()
	if err != nil {
		return err
	}
	layers := sm.Layers
	if st, perr := m.pingStats(ctx, tAddr); perr == nil {
		if entry, perr := planner.PlanFor(*st); perr == nil {
			layers = partition.FlattenSchedule(entry.Schedule)
		}
	}
	if len(layers) == 0 {
		return fmt.Errorf("master: no plan for client %d on server %d", sm.ClientID, sm.Target)
	}
	ctx, cancel := context.WithTimeout(ctx, wire.DefaultSendTimeout)
	defer cancel()
	mt := m.tr.NewTrace()
	span := m.tr.NewSpanID()
	start := m.tr.Now()
	resp, err := m.edges.RoundTrip(ctx, sm.SourceAddr, &wire.Envelope{
		Type: wire.MsgMigrateRequest,
		Migrate: &wire.Migrate{
			ClientID: sm.ClientID,
			Layers:   layers,
			PeerAddr: tAddr,
		},
		Trace: tracing.SpanContext{Trace: mt, Span: span},
	})
	if err != nil {
		return fmt.Errorf("master: edge %s: %w: %w", sm.SourceAddr, core.ErrServerDown, err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		return fmt.Errorf("master: edge %s rejected migration order", sm.SourceAddr)
	}
	m.tr.RecordWith(mt, span, 0, tracing.StageMigrate, nodeMaster, start, m.tr.Now())
	m.met.Counter("shard_migrations_in_total").Inc()
	return nil
}

// orderMigration computes a future plan for the target and tells the
// client's current edge server to push the layers.
func (m *Master) orderMigration(ctx context.Context, model dnn.ModelName, client int, curAddr string, target geo.ServerID) error {
	tAddr, ok := m.EdgeAddr(target)
	if !ok {
		return fmt.Errorf("master: no address for server %d", target)
	}
	st, err := m.pingStats(ctx, tAddr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	planner := m.planners[model]
	m.mu.Unlock()
	entry, err := planner.PlanFor(*st)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, wire.DefaultSendTimeout)
	defer cancel()
	// One trace per migration order, rooted at the master; the context
	// rides the request so the edge's push span links under it.
	mt := m.tr.NewTrace()
	span := m.tr.NewSpanID()
	start := m.tr.Now()
	// Orders target the same few edges every interval; the pool rides a
	// warm connection instead of dialing per order.
	resp, err := m.edges.RoundTrip(ctx, curAddr, &wire.Envelope{
		Type: wire.MsgMigrateRequest,
		Migrate: &wire.Migrate{
			ClientID: client,
			Layers:   partition.FlattenSchedule(entry.Schedule),
			PeerAddr: tAddr,
		},
		Trace: tracing.SpanContext{Trace: mt, Span: span},
	})
	if err != nil {
		return fmt.Errorf("master: edge %s: %w: %w", curAddr, core.ErrServerDown, err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		return fmt.Errorf("master: edge %s rejected migration order", curAddr)
	}
	m.tr.RecordWith(mt, span, 0, tracing.StageMigrate, nodeMaster, start, m.tr.Now())
	return nil
}

// pingStats fetches the live GPU statistics of an edge daemon. A daemon
// that cannot be reached surfaces as an error wrapping core.ErrServerDown.
func (m *Master) pingStats(ctx context.Context, addr string) (*gpusim.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, wire.DefaultDialTimeout)
	defer cancel()
	// Stats polls hit every edge repeatedly; a pooled conn turns each poll
	// into one round trip instead of dial+round trip. RoundTrip returns a
	// deep copy, so the sample stays valid after the conn is reused.
	resp, err := m.edges.RoundTrip(ctx, addr, &wire.Envelope{Type: wire.MsgStatsRequest})
	if err != nil {
		return nil, fmt.Errorf("master: edge %s: %w: %w", addr, core.ErrServerDown, err)
	}
	if resp.Type != wire.MsgStatsResponse || resp.Stats == nil || resp.Stats.Sample == nil {
		return nil, fmt.Errorf("master: bad stats response from %s", addr)
	}
	return resp.Stats.Sample, nil
}

// plan computes a current partitioning plan for a client against a server.
func (m *Master) plan(ctx context.Context, r *wire.PlanReq) (*wire.PlanResp, error) {
	start := time.Now()
	defer func() { m.met.Histogram("plan_latency_ns").ObserveDuration(time.Since(start)) }()
	m.met.Counter("plan_requests_total").Inc()
	m.mu.Lock()
	cs, ok := m.clients[r.ClientID]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("master: unknown client %d", r.ClientID)
	}
	planner := m.planners[cs.model]
	m.mu.Unlock()

	addr, ok := m.EdgeAddr(r.Server)
	if !ok {
		return nil, fmt.Errorf("master: unknown server %d", r.Server)
	}
	st, err := m.pingStats(ctx, addr)
	if err != nil {
		return nil, err
	}
	entry, err := planner.PlanFor(*st)
	if err != nil {
		return nil, err
	}
	units := make([][]dnn.LayerID, 0, len(entry.Schedule))
	for _, u := range entry.Schedule {
		ids := make([]dnn.LayerID, len(u.Layers))
		copy(ids, u.Layers)
		units = append(units, ids)
	}
	resp := &wire.PlanResp{
		ServerLayers: entry.Plan.ServerLayers(),
		UploadOrder:  units,
		Slowdown:     entry.Plan.Slowdown,
		EstLatencyNs: int64(entry.Plan.EstLatency),
	}
	if m.cfg.MaxHops > 1 {
		// Chain planning is best-effort: any failure (unreachable edges,
		// partitioner error) degrades to the single-split fields above,
		// which double as the client's failover plan either way.
		chain, err := m.planChain(ctx, r.Server, planner)
		switch {
		case err != nil:
			m.met.Counter("chain_plan_errors_total").Inc()
			m.log.Warn("chain planning failed; serving single split", "client", r.ClientID, "err", err)
		case chain.NumHops() >= 2:
			resp.Chain = make([]wire.PlanHop, 0, chain.NumHops())
			for i := range chain.Hops {
				hop := &chain.Hops[i]
				resp.Chain = append(resp.Chain, wire.PlanHop{
					Server:       geo.ServerID(hop.Server.ID),
					Addr:         hop.Server.Addr,
					ServerBaseNs: int64(hop.BaseExec),
					Intensity:    hop.Intensity,
					InBytes:      hop.InBytes,
				})
			}
			resp.ChainDownBytes = chain.DownBytes
			resp.ChainClientPreNs = int64(chain.ClientPre)
			resp.ChainClientPostNs = int64(chain.ClientPost)
			m.met.Counter("chain_plans_total").Inc()
		}
	}
	return resp, nil
}

// planChain assembles the candidate chain — the requested server first,
// every other reachable edge after it in ID order — with per-candidate
// slowdowns from live GPU stats, and runs the multi-hop partitioner.
// Unreachable edges are skipped, so a broken chain degrades to whatever
// subsequence still answers.
func (m *Master) planChain(ctx context.Context, first geo.ServerID, planner *core.Planner) (*partition.ChainPlan, error) {
	specs := make([]partition.ServerSpec, 0, len(m.edgesByID))
	add := func(info EdgeInfo) {
		st, err := m.pingStats(ctx, info.Addr)
		if err != nil {
			m.met.Counter("chain_candidate_skips_total").Inc()
			m.log.Warn("chain candidate unreachable", "server", int(info.ID), "err", err)
			return
		}
		specs = append(specs, partition.ServerSpec{
			ID:       int(info.ID),
			Addr:     info.Addr,
			Slowdown: planner.Slowdown(*st),
		})
	}
	if info, ok := m.edgesByID[first]; ok {
		add(info)
	}
	rest := make([]geo.ServerID, 0, len(m.edgesByID))
	for id := range m.edgesByID {
		if id != first {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, k int) bool { return rest[i] < rest[k] })
	for _, id := range rest {
		add(m.edgesByID[id])
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("master: no reachable chain candidates: %w", core.ErrServerDown)
	}
	return partition.PlanChain(partition.ChainRequest{
		Profile:   planner.Profile(),
		Link:      planner.Link(),
		Servers:   specs,
		MaxHops:   m.cfg.MaxHops,
		Objective: m.cfg.Objective,
	})
}
