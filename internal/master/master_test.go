package master

import (
	"net"
	"os"
	"sync"
	"testing"

	"perdnn/internal/dnn"
	"perdnn/internal/edged"
	"perdnn/internal/geo"
	"perdnn/internal/wire"
)

// The shared test fixture: two edge daemons in adjacent cells and one
// master, reused across tests because master construction trains the
// execution-time estimator.
var (
	fixtureOnce   sync.Once
	fixtureEdges  []EdgeInfo
	fixtureMaster *Master
	fixtureAddr   string
	fixtureErr    error
)

func fixture(t *testing.T) (edgeAddr string, loc geo.Point, masterAddr string, m *Master) {
	t.Helper()
	fixtureOnce.Do(func() {
		grid := geo.NewHexGrid(50)
		locs := []geo.Point{grid.Center(geo.HexCell{Q: 0, R: 0}), grid.Center(geo.HexCell{Q: 1, R: 0})}
		for i, loc := range locs {
			ecfg := edged.DefaultConfig(dnn.ModelMobileNet)
			ecfg.TimeScale = 0
			ecfg.GPUSeed = int64(i + 1)
			esrv, err := edged.New(ecfg)
			if err != nil {
				fixtureErr = err
				return
			}
			eln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fixtureErr = err
				return
			}
			go esrv.Serve(eln) //nolint:errcheck // lives for the test binary
			fixtureEdges = append(fixtureEdges, EdgeInfo{Addr: eln.Addr().String(), Location: loc})
		}

		mm, err := New(DefaultConfig(fixtureEdges))
		if err != nil {
			fixtureErr = err
			return
		}
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fixtureErr = err
			return
		}
		go mm.Serve(mln) //nolint:errcheck // lives for the test binary
		fixtureMaster = mm
		fixtureAddr = mln.Addr().String()
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureEdges[0].Addr, fixtureEdges[0].Location, fixtureAddr, fixtureMaster
}

// TestMain keeps os.Exit semantics while allowing the shared fixture.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no edges accepted")
	}
	cfg := DefaultConfig([]EdgeInfo{{Addr: "x", Location: geo.Point{}}})
	cfg.Radius = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestRegisterAndPlan(t *testing.T) {
	addr, loc, masterAddr, m := fixture(t)

	conn, err := wire.Dial(masterAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown

	// Plan request before registration must fail cleanly.
	resp, err := conn.RoundTrip(&wire.Envelope{
		Type:    wire.MsgPlanRequest,
		PlanReq: &wire.PlanReq{ClientID: 1, Server: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || resp.Ack.OK {
		t.Errorf("unregistered plan request not rejected: %+v", resp)
	}

	// Register, then plan.
	resp, err = conn.RoundTrip(&wire.Envelope{
		Type:     wire.MsgRegister,
		Register: &wire.Register{ClientID: 1, Model: dnn.ModelMobileNet},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		t.Fatalf("register rejected: %+v", resp)
	}

	sid := m.Placement().ServerAt(loc)
	resp, err = conn.RoundTrip(&wire.Envelope{
		Type:    wire.MsgPlanRequest,
		PlanReq: &wire.PlanReq{ClientID: 1, Server: sid},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgPlanResponse || resp.PlanResp == nil {
		t.Fatalf("bad plan response: %+v", resp)
	}
	if len(resp.PlanResp.ServerLayers) == 0 {
		t.Error("plan offloads nothing")
	}
	if resp.PlanResp.Slowdown < 1 {
		t.Errorf("plan slowdown %v", resp.PlanResp.Slowdown)
	}
	if got, ok := m.EdgeAddr(sid); !ok || got != addr {
		t.Errorf("EdgeAddr = %q/%v", got, ok)
	}
	if _, ok := m.EdgeAddr(geo.ServerID(99)); ok {
		t.Error("unknown server has an address")
	}
}

func TestRegisterUnknownModel(t *testing.T) {
	_, _, masterAddr, _ := fixture(t)
	conn, err := wire.Dial(masterAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown
	resp, err := conn.RoundTrip(&wire.Envelope{
		Type:     wire.MsgRegister,
		Register: &wire.Register{ClientID: 1, Model: "bogus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || resp.Ack.OK {
		t.Errorf("bogus model accepted: %+v", resp)
	}
}

func TestTrajectoryUnknownClient(t *testing.T) {
	_, _, masterAddr, _ := fixture(t)
	conn, err := wire.Dial(masterAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown
	resp, err := conn.RoundTrip(&wire.Envelope{
		Type:       wire.MsgTrajectory,
		Trajectory: &wire.Trajectory{ClientID: 77, Points: []geo.Point{{}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || resp.Ack.OK {
		t.Errorf("unknown client's trajectory accepted: %+v", resp)
	}
}

// TestTrajectoryTriggersMigration drives the master's proactive pipeline:
// the client's layers sit at edge A; walking toward edge B makes the master
// order A to push them to B.
func TestTrajectoryTriggersMigration(t *testing.T) {
	_, _, masterAddr, m := fixture(t)
	conn, err := wire.Dial(masterAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown

	const clientID = 55
	if resp, err := conn.RoundTrip(&wire.Envelope{
		Type:     wire.MsgRegister,
		Register: &wire.Register{ClientID: clientID, Model: dnn.ModelMobileNet},
	}); err != nil || resp.Ack == nil || !resp.Ack.OK {
		t.Fatalf("register: %v %+v", err, resp)
	}

	// Seed edge A with every layer of the model.
	mdl, err := dnn.ZooModel(dnn.ModelMobileNet)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]dnn.LayerID, 0, mdl.NumLayers())
	for i := 0; i < mdl.NumLayers(); i++ {
		all = append(all, dnn.LayerID(i))
	}
	edgeA, err := wire.Dial(fixtureEdges[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edgeA.Close() //nolint:errcheck // test teardown
	if resp, err := edgeA.RoundTrip(&wire.Envelope{
		Type:   wire.MsgUploadLayers,
		Upload: &wire.Upload{ClientID: clientID, Layers: all},
	}); err != nil || resp.Ack == nil || !resp.Ack.OK {
		t.Fatalf("seed upload: %v %+v", err, resp)
	}

	// Walk from A toward B; the dead-reckoning predictor extrapolates into
	// B's neighbourhood and the master orders the migration synchronously.
	a := fixtureEdges[0].Location
	for i := 0; i < 5; i++ {
		resp, err := conn.RoundTrip(&wire.Envelope{
			Type:       wire.MsgTrajectory,
			Trajectory: &wire.Trajectory{ClientID: clientID, Points: []geo.Point{{X: a.X + float64(i)*8, Y: a.Y}}},
		})
		if err != nil || resp.Ack == nil || !resp.Ack.OK {
			t.Fatalf("trajectory %d: %v %+v", i, err, resp)
		}
	}

	edgeB, err := wire.Dial(fixtureEdges[1].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edgeB.Close() //nolint:errcheck // test teardown
	resp, err := edgeB.RoundTrip(&wire.Envelope{
		Type: wire.MsgHasRequest,
		Has:  &wire.Has{ClientID: clientID, Layers: all},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Has == nil || len(resp.Has.Layers) == 0 {
		t.Fatal("no layers migrated to edge B")
	}
	if got := m.Placement().Len(); got != 2 {
		t.Errorf("placement has %d servers", got)
	}
}
