package trace

import (
	"fmt"
	"sort"
	"time"

	"perdnn/internal/geo"
)

// Stats summarizes a mobility dataset — the quantities the paper cites when
// characterizing KAIST and Geolife (user counts, average speed, dwell
// behaviour) plus the coverage figures that drive edge-server placement.
type Stats struct {
	// TrainUsers and TestUsers are the split sizes.
	TrainUsers int
	TestUsers  int
	// Duration is the per-user time span.
	Duration time.Duration
	// MeanSpeed is the test-split average speed in m/s (the paper's ~0.5
	// for KAIST, ~3.9 for Geolife).
	MeanSpeed float64
	// MedianSpeed and P90Speed characterize the speed distribution.
	MedianSpeed float64
	P90Speed    float64
	// StationaryShare is the fraction of steps slower than 0.25 m/s
	// (dwelling within GPS noise) — the behaviour that produces futile
	// predictions.
	StationaryShare float64
	// CellsVisited is the number of distinct grid cells any user touched —
	// the edge-server count after placement.
	CellsVisited int
	// CellChangesPerHour is the test-split average rate of server changes,
	// the cold-start opportunity rate.
	CellChangesPerHour float64
}

// ComputeStats derives the dataset's statistics on a hexagonal grid of the
// given cell radius (50 m in the paper).
func (d *Dataset) ComputeStats(cellRadius float64) (Stats, error) {
	if cellRadius <= 0 {
		return Stats{}, fmt.Errorf("trace: cell radius %v", cellRadius)
	}
	if len(d.Test) == 0 {
		return Stats{}, fmt.Errorf("trace: dataset %q has no test split", d.Name)
	}
	st := Stats{
		TrainUsers: len(d.Train),
		TestUsers:  len(d.Test),
		Duration:   d.Test[0].Duration(),
	}

	grid := geo.NewHexGrid(cellRadius)
	cells := make(map[geo.HexCell]struct{}, 1024)
	for _, p := range d.AllPoints() {
		cells[grid.CellAt(p)] = struct{}{}
	}
	st.CellsVisited = len(cells)

	var speeds []float64
	var stationary, steps int
	var changes int
	var testTime time.Duration
	for _, tr := range d.Test {
		testTime += tr.Duration()
		prevCell := grid.CellAt(tr.Points[0])
		for i := 1; i < tr.Len(); i++ {
			dist := tr.Points[i].Dist(tr.Points[i-1])
			v := dist / tr.Interval.Seconds()
			speeds = append(speeds, v)
			steps++
			if v < 0.25 {
				stationary++
			}
			if c := grid.CellAt(tr.Points[i]); c != prevCell {
				changes++
				prevCell = c
			}
		}
	}
	if steps == 0 {
		return Stats{}, fmt.Errorf("trace: dataset %q has no movement samples", d.Name)
	}
	sort.Float64s(speeds)
	var sum float64
	for _, v := range speeds {
		sum += v
	}
	st.MeanSpeed = sum / float64(len(speeds))
	st.MedianSpeed = speeds[len(speeds)/2]
	st.P90Speed = speeds[len(speeds)*9/10]
	st.StationaryShare = float64(stationary) / float64(steps)
	if hours := testTime.Hours(); hours > 0 {
		st.CellChangesPerHour = float64(changes) / hours
	}
	return st, nil
}

// String implements fmt.Stringer with a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d+%d users over %v: %.2f m/s mean (median %.2f, p90 %.2f), %.0f%% stationary, %d cells, %.1f cell changes/h",
		s.TrainUsers, s.TestUsers, s.Duration,
		s.MeanSpeed, s.MedianSpeed, s.P90Speed,
		s.StationaryShare*100, s.CellsVisited, s.CellChangesPerHour)
}
