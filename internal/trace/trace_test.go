package trace

import (
	"testing"
	"time"

	"perdnn/internal/geo"
)

func genSmall(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	cfg.TrainUsers = 4
	cfg.TestUsers = 3
	cfg.Duration = 30 * time.Minute
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateValidation(t *testing.T) {
	cfg := KAISTConfig()
	cfg.TestUsers = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero users accepted")
	}
	cfg = KAISTConfig()
	cfg.BaseInterval = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero interval accepted")
	}
	cfg = KAISTConfig()
	cfg.Modes = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("no modes accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	d := genSmall(t, KAISTConfig())
	if len(d.Train) != 4 || len(d.Test) != 3 {
		t.Fatalf("splits %d/%d", len(d.Train), len(d.Test))
	}
	wantSamples := int(30*time.Minute/(5*time.Second)) + 1
	for _, tr := range append(append([]Trajectory{}, d.Train...), d.Test...) {
		if tr.Len() != wantSamples {
			t.Errorf("user %d has %d samples, want %d", tr.User, tr.Len(), wantSamples)
		}
		for _, p := range tr.Points {
			if !d.Area.Contains(p) {
				t.Fatalf("user %d left the area: %v", tr.User, p)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, KAISTConfig())
	b := genSmall(t, KAISTConfig())
	for i := range a.Test {
		for j := range a.Test[i].Points {
			if a.Test[i].Points[j] != b.Test[i].Points[j] {
				t.Fatalf("user %d diverges at %d", i, j)
			}
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := KAISTConfig()
	a := genSmall(t, cfg)
	cfg.Seed = 99
	b := genSmall(t, cfg)
	same := true
	for j := range a.Test[0].Points {
		if a.Test[0].Points[j] != b.Test[0].Points[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

// TestSpeedCalibration checks the generated datasets land near the paper's
// reported average speeds: ~0.5 m/s for KAIST, ~3.9 m/s for Geolife.
func TestSpeedCalibration(t *testing.T) {
	// Compare at the original datasets' sampling rates: KAIST was
	// collected every 30 s, Geolife every 1-5 s. GPS noise inflates the
	// apparent path length at fine sampling, for us and for the originals.
	kBase, err := Generate(KAISTConfig())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kBase.Resample(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v := k.MeanSpeed(); v < 0.3 || v > 0.8 {
		t.Errorf("KAIST mean speed %.2f m/s, want ~0.5", v)
	}
	g, err := Generate(GeolifeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := g.MeanSpeed(); v < 3.0 || v > 5.0 {
		t.Errorf("Geolife mean speed %.2f m/s, want ~3.9", v)
	}
	if g.MeanSpeed() < 4*k.MeanSpeed() {
		t.Errorf("Geolife (%.2f) must be much faster than KAIST (%.2f)", g.MeanSpeed(), k.MeanSpeed())
	}
}

func TestPaperScaleConfigs(t *testing.T) {
	k := KAISTConfig()
	if k.TestUsers != 31 {
		t.Errorf("KAIST test users = %d, want 31", k.TestUsers)
	}
	if k.Area.Width() != 1500 || k.Area.Height() != 2000 {
		t.Errorf("KAIST area = %vx%v, want 1500x2000", k.Area.Width(), k.Area.Height())
	}
	g := GeolifeConfig()
	if g.TestUsers != 138 {
		t.Errorf("Geolife test users = %d, want 138", g.TestUsers)
	}
	if g.Area.Width() != 7200 || g.Area.Height() != 5600 {
		t.Errorf("Geolife area = %vx%v, want 7200x5600", g.Area.Width(), g.Area.Height())
	}
}

func TestResample(t *testing.T) {
	d := genSmall(t, KAISTConfig())
	r, err := d.Resample(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Interval != 20*time.Second {
		t.Errorf("interval = %v", r.Interval)
	}
	orig := d.Test[0]
	res := r.Test[0]
	if res.Len() != (orig.Len()+3)/4 {
		t.Errorf("resampled len %d from %d", res.Len(), orig.Len())
	}
	for i := 0; i < res.Len(); i++ {
		if res.Points[i] != orig.Points[i*4] {
			t.Fatalf("resample mismatch at %d", i)
		}
	}
	if _, err := d.Resample(7 * time.Second); err == nil {
		t.Error("non-multiple interval accepted")
	}
	if _, err := d.Resample(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	tr := Trajectory{User: 1, Interval: time.Second, Points: []geo.Point{{}, {X: 3, Y: 4}}}
	if tr.Duration() != time.Second {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if tr.MeanSpeed() != 5 {
		t.Errorf("MeanSpeed = %v", tr.MeanSpeed())
	}
	if tr.At(1) != (geo.Point{X: 3, Y: 4}) {
		t.Errorf("At = %v", tr.At(1))
	}
	empty := Trajectory{Interval: time.Second}
	if empty.Duration() != 0 || empty.MeanSpeed() != 0 {
		t.Error("empty trajectory stats not zero")
	}
}

func TestAllPointsCount(t *testing.T) {
	d := genSmall(t, KAISTConfig())
	want := 0
	for _, tr := range d.Train {
		want += tr.Len()
	}
	for _, tr := range d.Test {
		want += tr.Len()
	}
	if got := len(d.AllPoints()); got != want {
		t.Errorf("AllPoints = %d, want %d", got, want)
	}
}

// TestUsersRevisitPOIs verifies the routine structure that makes mobility
// prediction learnable: users return to previously visited places.
func TestUsersRevisitPOIs(t *testing.T) {
	cfg := KAISTConfig()
	cfg.TrainUsers = 1
	cfg.TestUsers = 1
	cfg.Duration = 6 * time.Hour
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count revisits at cell granularity: the user must come back to at
	// least one 100m cell after having left it.
	grid := geo.NewHexGrid(100)
	tr := d.Test[0]
	var visits []geo.HexCell
	for _, p := range tr.Points {
		c := grid.CellAt(p)
		if len(visits) == 0 || visits[len(visits)-1] != c {
			visits = append(visits, c)
		}
	}
	seen := map[geo.HexCell]int{}
	revisits := 0
	for _, c := range visits {
		seen[c]++
		if seen[c] > 1 {
			revisits++
		}
	}
	if revisits < 3 {
		t.Errorf("only %d cell revisits in 6h, routine structure missing", revisits)
	}
}

func TestServerPlacementScale(t *testing.T) {
	// With 50 m cells, the KAIST-like dataset must yield a substantial
	// number of edge servers (the paper's simulation has hundreds of cells,
	// e.g. "24 servers in KAIST" being only the top 5-7% most crowded).
	d, err := Generate(KAISTConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := geo.NewPlacement(geo.NewHexGrid(50), d.AllPoints())
	if pl.Len() < 100 {
		t.Errorf("KAIST placement has %d servers, want >= 100", pl.Len())
	}
}

func TestComputeStats(t *testing.T) {
	d := genSmall(t, KAISTConfig())
	st, err := d.ComputeStats(50)
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainUsers != 4 || st.TestUsers != 3 {
		t.Errorf("user counts %d/%d", st.TrainUsers, st.TestUsers)
	}
	if st.MeanSpeed <= 0 || st.MedianSpeed < 0 || st.P90Speed < st.MedianSpeed {
		t.Errorf("speed stats inconsistent: %+v", st)
	}
	if st.StationaryShare <= 0 || st.StationaryShare >= 1 {
		t.Errorf("stationary share %v", st.StationaryShare)
	}
	if st.CellsVisited <= 0 || st.CellChangesPerHour <= 0 {
		t.Errorf("coverage stats: %+v", st)
	}
	if st.String() == "" {
		t.Error("empty String")
	}
	if _, err := d.ComputeStats(0); err == nil {
		t.Error("zero radius accepted")
	}
	empty := &Dataset{Name: "x", Interval: time.Second}
	if _, err := empty.ComputeStats(50); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestStatsSeparateDatasets: the urban dataset is faster and less
// stationary than the campus one.
func TestStatsSeparateDatasets(t *testing.T) {
	k := genSmall(t, KAISTConfig())
	g := genSmall(t, GeolifeConfig())
	ks, err := k.ComputeStats(50)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := g.ComputeStats(50)
	if err != nil {
		t.Fatal(err)
	}
	if gs.MeanSpeed <= ks.MeanSpeed {
		t.Errorf("geolife %.2f m/s not above kaist %.2f", gs.MeanSpeed, ks.MeanSpeed)
	}
	if gs.CellChangesPerHour <= ks.CellChangesPerHour {
		t.Errorf("geolife changes %.1f/h not above kaist %.1f/h",
			gs.CellChangesPerHour, ks.CellChangesPerHour)
	}
}
