// Package trace generates synthetic mobility datasets standing in for the
// paper's two GPS corpora: the KAIST campus traces (CRAWDAD
// ncsu/mobilitymodels: students walking between buildings, ~0.5 m/s,
// clipped to a 1.5 km x 2 km rectangle, 31 played-back users) and Geolife
// (Beijing, mixed transport modes averaging ~3.9 m/s, clipped to a 7.2 km x
// 5.6 km rectangle, 138 played-back users).
//
// The originals are not redistributable here; what the paper's experiments
// consume is their statistics — speed distributions, dwell behaviour,
// routine revisits that make short-horizon trajectory prediction learnable,
// and the set of visited cells that determines edge-server placement. The
// generator reproduces those: each user has a personal set of favourite
// points of interest visited via a per-user Markov routine, walks or rides
// between them with mode-dependent speeds and heading noise, and dwells at
// each stop. All randomness is seeded; generation is deterministic.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"perdnn/internal/geo"
)

// Trajectory is one user's position track sampled at a fixed interval.
type Trajectory struct {
	// User is the user's index within its dataset split.
	User int
	// Interval is the sampling period between consecutive points.
	Interval time.Duration
	// Points are the sampled positions, oldest first.
	Points []geo.Point
}

// At returns the position at sample index i.
func (tr Trajectory) At(i int) geo.Point { return tr.Points[i] }

// Len returns the number of samples.
func (tr Trajectory) Len() int { return len(tr.Points) }

// Duration returns the covered time span.
func (tr Trajectory) Duration() time.Duration {
	if len(tr.Points) == 0 {
		return 0
	}
	return time.Duration(len(tr.Points)-1) * tr.Interval
}

// Resample returns the trajectory sampled every `interval` instead. The new
// interval must be a positive multiple of the current one; this mirrors the
// paper's construction of datasets "with different time intervals by
// sampling the trajectory data in a different rate".
func (tr Trajectory) Resample(interval time.Duration) (Trajectory, error) {
	if interval <= 0 || interval%tr.Interval != 0 {
		return Trajectory{}, fmt.Errorf("trace: interval %v is not a multiple of %v", interval, tr.Interval)
	}
	step := int(interval / tr.Interval)
	pts := make([]geo.Point, 0, len(tr.Points)/step+1)
	for i := 0; i < len(tr.Points); i += step {
		pts = append(pts, tr.Points[i])
	}
	return Trajectory{User: tr.User, Interval: interval, Points: pts}, nil
}

// MeanSpeed returns the user's average speed in m/s over the trajectory.
func (tr Trajectory) MeanSpeed() float64 {
	if len(tr.Points) < 2 {
		return 0
	}
	var dist float64
	for i := 1; i < len(tr.Points); i++ {
		dist += tr.Points[i].Dist(tr.Points[i-1])
	}
	return dist / tr.Duration().Seconds()
}

// Dataset is a generated mobility corpus with a train/test user split: the
// predictors are fit on Train and the simulation plays back Test, as in
// Section IV.B.1.
type Dataset struct {
	Name     string
	Area     geo.Rect
	Interval time.Duration
	Train    []Trajectory
	Test     []Trajectory
}

// Resample returns the dataset sampled at the given interval.
func (d *Dataset) Resample(interval time.Duration) (*Dataset, error) {
	out := &Dataset{
		Name:     d.Name,
		Area:     d.Area,
		Interval: interval,
		Train:    make([]Trajectory, 0, len(d.Train)),
		Test:     make([]Trajectory, 0, len(d.Test)),
	}
	for _, tr := range d.Train {
		r, err := tr.Resample(interval)
		if err != nil {
			return nil, err
		}
		out.Train = append(out.Train, r)
	}
	for _, tr := range d.Test {
		r, err := tr.Resample(interval)
		if err != nil {
			return nil, err
		}
		out.Test = append(out.Test, r)
	}
	return out, nil
}

// AllPoints returns every sampled position across both splits — the visited
// set that drives edge-server placement ("we allocated an edge server to a
// cell which had been visited by any user").
func (d *Dataset) AllPoints() []geo.Point {
	n := 0
	for _, tr := range d.Train {
		n += len(tr.Points)
	}
	for _, tr := range d.Test {
		n += len(tr.Points)
	}
	out := make([]geo.Point, 0, n)
	for _, tr := range d.Train {
		out = append(out, tr.Points...)
	}
	for _, tr := range d.Test {
		out = append(out, tr.Points...)
	}
	return out
}

// MeanSpeed returns the average user speed across the test split in m/s.
func (d *Dataset) MeanSpeed() float64 {
	if len(d.Test) == 0 {
		return 0
	}
	var sum float64
	for _, tr := range d.Test {
		sum += tr.MeanSpeed()
	}
	return sum / float64(len(d.Test))
}

// mode is a transport mode with a speed distribution.
type mode struct {
	meanSpeed float64 // m/s
	sdSpeed   float64
	weight    float64 // selection probability weight per trip
}

// Config parameterizes dataset generation.
type Config struct {
	// Name labels the dataset ("kaist", "geolife").
	Name string
	// Area is the evaluation rectangle in meters.
	Area geo.Rect
	// TrainUsers and TestUsers size the two splits.
	TrainUsers int
	TestUsers  int
	// Duration is the time span generated per user.
	Duration time.Duration
	// BaseInterval is the native sampling period (the originals sample
	// every 1-5 s for Geolife, 30 s for KAIST; we use a common fine base
	// so experiments can resample to any multiple).
	BaseInterval time.Duration
	// NumPOIs is the number of shared points of interest in the area.
	NumPOIs int
	// POIsPerUser is the size of each user's personal routine set.
	POIsPerUser int
	// DwellMean is the mean pause at a POI.
	DwellMean time.Duration
	// Manhattan routes trips along axis-aligned street segments (urban
	// grid) instead of straight lines (campus paths).
	Manhattan bool
	// StreetSpacing snaps POIs and route corners to a street grid of this
	// spacing (meters) when Manhattan is set, concentrating coverage along
	// shared streets as real urban GPS data does. Zero disables snapping.
	StreetSpacing float64
	// GPSNoise is the stationary standard deviation (meters) of the
	// autocorrelated positioning error added to every emitted sample.
	GPSNoise float64
	// SpeedJitter is the per-step lognormal sigma of instantaneous speed,
	// modelling bursty human movement; zero means perfectly steady travel.
	SpeedJitter float64
	// Modes are the available transport modes.
	Modes []mode
	// Seed makes generation deterministic.
	Seed int64
}

// KAISTConfig returns the generator configuration matching the KAIST
// dataset statistics: walking students on a 1.5 km x 2 km campus, ~0.5 m/s
// average including dwells, 31 test users.
func KAISTConfig() Config {
	return Config{
		Name:         "kaist",
		Area:         geo.NewRect(1500, 2000),
		TrainUsers:   60,
		TestUsers:    31,
		Duration:     4 * time.Hour,
		BaseInterval: 5 * time.Second,
		NumPOIs:      30,
		POIsPerUser:  6,
		DwellMean:    22 * time.Minute,
		Manhattan:    false,
		GPSNoise:     10,
		SpeedJitter:  0.65,
		Modes: []mode{
			{meanSpeed: 1.25, sdSpeed: 0.2, weight: 1}, // walking
		},
		Seed: 1,
	}
}

// GeolifeConfig returns the generator configuration matching the Geolife
// subset statistics: a 7.2 km x 5.6 km Beijing rectangle, mixed transport
// modes averaging ~3.9 m/s, 138 test users.
func GeolifeConfig() Config {
	return Config{
		Name:          "geolife",
		Area:          geo.NewRect(7200, 5600),
		TrainUsers:    100,
		TestUsers:     138,
		Duration:      4 * time.Hour,
		BaseInterval:  5 * time.Second,
		NumPOIs:       80,
		POIsPerUser:   7,
		DwellMean:     4 * time.Minute,
		Manhattan:     true,
		StreetSpacing: 250,
		GPSNoise:      4,
		SpeedJitter:   0.25,
		Modes: []mode{
			{meanSpeed: 1.4, sdSpeed: 0.2, weight: 0.15}, // walk
			{meanSpeed: 4.5, sdSpeed: 0.8, weight: 0.2},  // bike
			{meanSpeed: 8.5, sdSpeed: 1.5, weight: 0.35}, // bus/car
			{meanSpeed: 12, sdSpeed: 2, weight: 0.3},     // subway/taxi
		},
		Seed: 2,
	}
}

// Generate produces a dataset from the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.TrainUsers <= 0 || cfg.TestUsers <= 0 {
		return nil, fmt.Errorf("trace: need positive user counts, got %d/%d", cfg.TrainUsers, cfg.TestUsers)
	}
	if cfg.BaseInterval <= 0 || cfg.Duration < cfg.BaseInterval {
		return nil, fmt.Errorf("trace: bad sampling config: interval %v duration %v", cfg.BaseInterval, cfg.Duration)
	}
	if len(cfg.Modes) == 0 {
		return nil, fmt.Errorf("trace: dataset %q has no transport modes", cfg.Name)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	pois := make([]geo.Point, 0, cfg.NumPOIs)
	for i := 0; i < cfg.NumPOIs; i++ {
		p := geo.Point{
			X: cfg.Area.Min.X + rng.Float64()*cfg.Area.Width(),
			Y: cfg.Area.Min.Y + rng.Float64()*cfg.Area.Height(),
		}
		if cfg.Manhattan && cfg.StreetSpacing > 0 {
			p = snapToGrid(p, cfg.StreetSpacing)
			p = cfg.Area.Clamp(p)
		}
		pois = append(pois, p)
	}

	d := &Dataset{
		Name:     cfg.Name,
		Area:     cfg.Area,
		Interval: cfg.BaseInterval,
		Train:    make([]Trajectory, 0, cfg.TrainUsers),
		Test:     make([]Trajectory, 0, cfg.TestUsers),
	}
	for u := 0; u < cfg.TrainUsers; u++ {
		d.Train = append(d.Train, genUser(cfg, pois, u, rng))
	}
	for u := 0; u < cfg.TestUsers; u++ {
		d.Test = append(d.Test, genUser(cfg, pois, u, rng))
	}
	return d, nil
}

// genUser simulates one user: a Markov routine over a personal POI subset,
// trips at a per-trip transport mode, dwells at each stop.
func genUser(cfg Config, pois []geo.Point, user int, rng *rand.Rand) Trajectory {
	nSamples := int(cfg.Duration/cfg.BaseInterval) + 1
	pts := make([]geo.Point, 0, nSamples)

	// Personal POI routine: a favourite subset with a bias toward the
	// first two ("home" and "work"), making revisits frequent.
	perm := rng.Perm(len(pois))
	k := cfg.POIsPerUser
	if k > len(perm) {
		k = len(perm)
	}
	personal := perm[:k]

	pickNext := func(cur int) int {
		for {
			var idx int
			if rng.Float64() < 0.5 {
				idx = personal[rng.Intn(2)] // favourite pair
			} else {
				idx = personal[rng.Intn(len(personal))]
			}
			if idx != cur {
				return idx
			}
		}
	}

	cur := personal[rng.Intn(len(personal))]
	pos := pois[cur]
	dt := cfg.BaseInterval.Seconds()

	// AR(1) positioning error: stationary sigma cfg.GPSNoise, correlation
	// rho per base step (real GPS error drifts rather than jumping).
	const rho = 0.97
	innov := cfg.GPSNoise * math.Sqrt(1-rho*rho)
	var gpsErr geo.Point

	emit := func() {
		gpsErr = geo.Point{
			X: rho*gpsErr.X + rng.NormFloat64()*innov,
			Y: rho*gpsErr.Y + rng.NormFloat64()*innov,
		}
		pts = append(pts, cfg.Area.Clamp(pos.Add(gpsErr)))
	}

	// State machine: dwell at POI, then travel to the next one.
	dwellLeft := cfg.DwellMean.Seconds() * rng.ExpFloat64()
	var route []geo.Point // remaining waypoints of the active trip
	speed := 0.0

	for len(pts) < nSamples {
		emit()
		if dwellLeft > 0 {
			dwellLeft -= dt
			continue
		}
		if len(route) == 0 {
			// Start a new trip.
			next := pickNext(cur)
			route = planRoute(pos, pois[next], cfg, rng)
			cur = next
			m := pickMode(cfg.Modes, rng)
			speed = math.Max(0.3, m.meanSpeed+rng.NormFloat64()*m.sdSpeed)
		}
		// Advance along the route with bursty instantaneous speed.
		eff := speed
		if cfg.SpeedJitter > 0 {
			eff *= math.Exp(rng.NormFloat64() * cfg.SpeedJitter)
			if eff > 2.5*speed {
				eff = 2.5 * speed
			}
		}
		step := eff * dt
		for step > 0 && len(route) > 0 {
			d := pos.Dist(route[0])
			if d <= step {
				step -= d
				pos = route[0]
				route = route[1:]
			} else {
				pos = pos.Lerp(route[0], step/d)
				step = 0
			}
		}
		if len(route) == 0 {
			dwellLeft = cfg.DwellMean.Seconds() * rng.ExpFloat64()
		}
	}
	return Trajectory{User: user, Interval: cfg.BaseInterval, Points: pts}
}

// snapToGrid moves p to the nearest street-grid intersection.
func snapToGrid(p geo.Point, spacing float64) geo.Point {
	return geo.Point{
		X: math.Round(p.X/spacing) * spacing,
		Y: math.Round(p.Y/spacing) * spacing,
	}
}

// planRoute returns the waypoints of a trip. Urban datasets route along an
// L-shaped street path (snapped to the street grid when configured);
// campus datasets go straight with a slight detour.
func planRoute(from, to geo.Point, cfg Config, rng *rand.Rand) []geo.Point {
	if cfg.Manhattan {
		corner := geo.Point{X: to.X, Y: from.Y}
		if rng.Float64() < 0.5 {
			corner = geo.Point{X: from.X, Y: to.Y}
		}
		if cfg.StreetSpacing > 0 {
			corner = snapToGrid(corner, cfg.StreetSpacing)
		}
		return []geo.Point{corner, to}
	}
	// Curved path: two intermediate waypoints offset from the direct line
	// (campus walkways bend around buildings).
	d := from.Dist(to)
	w1 := from.Lerp(to, 0.33).Add(geo.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}.Scale(d * 0.12))
	w2 := from.Lerp(to, 0.66).Add(geo.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}.Scale(d * 0.12))
	return []geo.Point{w1, w2, to}
}

func pickMode(modes []mode, rng *rand.Rand) mode {
	var total float64
	for _, m := range modes {
		total += m.weight
	}
	r := rng.Float64() * total
	for _, m := range modes {
		if r < m.weight {
			return m
		}
		r -= m.weight
	}
	return modes[len(modes)-1]
}
