// Package profile models per-layer DNN execution latency on client and
// server hardware. The paper runs its simulation on execution profiles
// recorded from real devices (ODROID XU4 client, Titan Xp edge server); we
// derive equivalent profiles analytically from each layer's FLOP count,
// byte traffic, and a per-layer framework overhead, with device constants
// calibrated against the paper's observable timings:
//
//   - model upload times at 35 Mbps match Table II exactly (3.7 / 29.3 /
//     22.4 s follow from the Table I model sizes),
//   - client-local MobileNet inference lands near the ~0.43 s implied by
//     Table II's miss-case query count,
//   - full-offload query latency (input transfer + server execution) lands
//     near the ~0.16 s implied by Table II's hit-case query counts.
package profile

import (
	"fmt"
	"time"

	"perdnn/internal/dnn"
)

// Device describes the execution characteristics of one piece of hardware.
// A layer's latency is the larger of its compute time and its memory time,
// plus a fixed per-layer overhead (kernel launch, framework dispatch).
type Device struct {
	Name string `json:"name"`
	// GFLOPS is the sustained floating-point throughput in GFLOP/s.
	GFLOPS float64 `json:"gflops"`
	// MemGBps is the sustained memory bandwidth in GB/s; elementwise
	// layers are bound by it rather than by compute.
	MemGBps float64 `json:"memGBps"`
	// LayerOverhead is the fixed per-layer dispatch cost.
	LayerOverhead time.Duration `json:"layerOverhead"`
}

// ClientODROID returns the profile of the paper's client board, an ODROID
// XU4 (ARM big.LITTLE, Caffe CPU backend).
func ClientODROID() Device {
	return Device{Name: "odroid-xu4", GFLOPS: 2.8, MemGBps: 5, LayerOverhead: 200 * time.Microsecond}
}

// ServerTitanXp returns the profile of the paper's edge server, a desktop
// with a Titan Xp GPU, at contention-free load. Contention scaling on top of
// this base is the business of package gpusim.
func ServerTitanXp() Device {
	return Device{Name: "titan-xp", GFLOPS: 2000, MemGBps: 400, LayerOverhead: 80 * time.Microsecond}
}

// LayerTime returns the latency of executing one layer on d.
func (d Device) LayerTime(l *dnn.Layer) time.Duration {
	if d.GFLOPS <= 0 || d.MemGBps <= 0 {
		panic(fmt.Sprintf("profile: device %q has non-positive throughput", d.Name))
	}
	compute := float64(l.FLOPs) / (d.GFLOPS * 1e9)
	bytes := float64(l.In.Bytes() + l.Out.Bytes() + l.WeightBytes)
	memory := bytes / (d.MemGBps * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	return time.Duration(t*float64(time.Second)) + d.LayerOverhead
}

// ModelTime returns the latency of executing every layer of m sequentially
// on d (the fully-local or fully-offloaded execution time, excluding
// transfers).
func (d Device) ModelTime(m *dnn.Model) time.Duration {
	var sum time.Duration
	for i := range m.Layers {
		sum += d.LayerTime(&m.Layers[i])
	}
	return sum
}

// ModelProfile is the paper's "DNN profile": everything the master server
// needs to partition a model — layer hyperparameters, tensor sizes, weight
// sizes, and client-side execution times — but no weights. It is small and
// cheap to upload (Section III.B).
type ModelProfile struct {
	Model *dnn.Model
	// ClientTime[i] is the measured client-side latency of layer i.
	ClientTime []time.Duration
	// ServerBase[i] is the contention-free server-side latency of layer i,
	// used as the floor for GPU-aware estimates.
	ServerBase []time.Duration
}

// NewModelProfile profiles m on the given client and server devices.
func NewModelProfile(m *dnn.Model, client, server Device) *ModelProfile {
	p := &ModelProfile{
		Model:      m,
		ClientTime: make([]time.Duration, m.NumLayers()),
		ServerBase: make([]time.Duration, m.NumLayers()),
	}
	for i := range m.Layers {
		p.ClientTime[i] = client.LayerTime(&m.Layers[i])
		p.ServerBase[i] = server.LayerTime(&m.Layers[i])
	}
	return p
}

// TotalClientTime returns the fully-local inference latency.
func (p *ModelProfile) TotalClientTime() time.Duration {
	var sum time.Duration
	for _, t := range p.ClientTime {
		sum += t
	}
	return sum
}

// TotalServerBase returns the contention-free fully-offloaded execution
// latency (excluding transfers).
func (p *ModelProfile) TotalServerBase() time.Duration {
	var sum time.Duration
	for _, t := range p.ServerBase {
		sum += t
	}
	return sum
}

// ProfileBytes returns the approximate wire size of the profile itself:
// a few dozen bytes per layer (hyperparameters and timings), no weights.
// This is what a client uploads to the master server on first contact.
func (p *ModelProfile) ProfileBytes() int64 {
	return int64(p.Model.NumLayers()) * 48
}
