package profile

import (
	"testing"
	"time"

	"perdnn/internal/dnn"
)

func TestDeviceLayerTimePositive(t *testing.T) {
	m := dnn.MobileNetV1()
	d := ClientODROID()
	for i := range m.Layers {
		lt := d.LayerTime(&m.Layers[i])
		if lt <= 0 {
			t.Fatalf("layer %d time %v", i, lt)
		}
		if lt < d.LayerOverhead {
			t.Fatalf("layer %d time %v below overhead", i, lt)
		}
	}
}

func TestDevicePanicsOnBadThroughput(t *testing.T) {
	m := dnn.MobileNetV1()
	d := Device{Name: "bad", GFLOPS: 0, MemGBps: 1, LayerOverhead: time.Millisecond}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.LayerTime(&m.Layers[0])
}

// TestCalibrationAgainstPaper checks the device constants land in the
// latency regimes the paper's Table II implies.
func TestCalibrationAgainstPaper(t *testing.T) {
	client, server := ClientODROID(), ServerTitanXp()

	// MobileNet local: Table II miss case implies ~0.43 s per query.
	mn := dnn.MobileNetV1()
	local := client.ModelTime(mn)
	if local < 300*time.Millisecond || local > 600*time.Millisecond {
		t.Errorf("MobileNet local = %v, want ~0.43s", local)
	}

	// Large models must be slow locally (seconds) and fast on the server
	// (tens of ms) — the offloading motivation.
	for _, build := range []func() *dnn.Model{dnn.Inception21k, dnn.ResNet50} {
		m := build()
		cl, sv := client.ModelTime(m), server.ModelTime(m)
		if cl < time.Second {
			t.Errorf("%s local = %v, want >= 1s", m.Name, cl)
		}
		if sv > 100*time.Millisecond {
			t.Errorf("%s server = %v, want <= 100ms", m.Name, sv)
		}
		if cl < 10*sv {
			t.Errorf("%s speedup %v/%v < 10x", m.Name, cl, sv)
		}
	}
}

func TestModelProfile(t *testing.T) {
	m := dnn.ResNet50()
	p := NewModelProfile(m, ClientODROID(), ServerTitanXp())
	if len(p.ClientTime) != m.NumLayers() || len(p.ServerBase) != m.NumLayers() {
		t.Fatal("profile length mismatch")
	}
	var wantClient, wantServer time.Duration
	for i := range p.ClientTime {
		wantClient += p.ClientTime[i]
		wantServer += p.ServerBase[i]
	}
	if p.TotalClientTime() != wantClient {
		t.Errorf("TotalClientTime = %v, want %v", p.TotalClientTime(), wantClient)
	}
	if p.TotalServerBase() != wantServer {
		t.Errorf("TotalServerBase = %v, want %v", p.TotalServerBase(), wantServer)
	}
}

func TestProfileBytesSmall(t *testing.T) {
	m := dnn.Inception21k()
	p := NewModelProfile(m, ClientODROID(), ServerTitanXp())
	// The profile must be orders of magnitude smaller than the weights:
	// that is the whole point of uploading profiles instead of models.
	if p.ProfileBytes() > m.TotalWeightBytes()/100 {
		t.Errorf("profile %d bytes vs weights %d", p.ProfileBytes(), m.TotalWeightBytes())
	}
	if p.ProfileBytes() <= 0 {
		t.Error("non-positive profile size")
	}
}

func TestMemoryBoundLayers(t *testing.T) {
	// An elementwise layer on a huge tensor must be memory-bound: its time
	// should scale with bytes, not its (tiny) FLOP count.
	b := dnn.NewBuilder("m", dnn.Shape{C: 64, H: 256, W: 256})
	r := b.ReLU("r")
	m := b.Build()
	_ = r
	d := ClientODROID()
	lt := d.LayerTime(m.Layer(0))
	bytes := float64(m.Layer(0).In.Bytes() + m.Layer(0).Out.Bytes())
	wantMin := time.Duration(bytes / (d.MemGBps * 1e9) * float64(time.Second))
	if lt < wantMin {
		t.Errorf("relu time %v below memory floor %v", lt, wantMin)
	}
}
