// Package raceguard reports whether the binary was built with the race
// detector. Allocation-gate tests consult it: the detector's
// instrumentation adds heap allocations of its own, so testing.AllocsPerRun
// assertions only hold in non-race builds and must be skipped (not relaxed)
// under -race.
package raceguard
