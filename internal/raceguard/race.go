//go:build race

package raceguard

// Enabled reports whether the race detector is active in this build.
const Enabled = true
