package mobility

import (
	"sync"
	"testing"
	"time"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// TestPredictorsConcurrentPrediction: every trained predictor must be
// read-only at prediction time — a prepared Env shares one predictor across
// all concurrent simulation runs. Run under -race in CI.
func TestPredictorsConcurrentPrediction(t *testing.T) {
	ds, pl := testEnv(t, trace.KAISTConfig(), 20*time.Second)
	train, test := ds.Train, ds.Test
	preds := []Predictor{
		&SVR{Seed: 1},
		&Markov{},
		&Linear{},
	}
	for _, p := range preds {
		if err := p.Fit(train, pl, 3); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}

	recent := test[0].Points[:3]
	for _, p := range preds {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			results := make([][]geo.ServerID, 8)
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					p.PredictPoint(recent)
					results[i] = p.Rank(recent, 2)
				}(i)
			}
			wg.Wait()
			for i := 1; i < len(results); i++ {
				if len(results[i]) != len(results[0]) {
					t.Fatalf("concurrent Rank calls disagreed: %v vs %v", results[i], results[0])
				}
				for j := range results[i] {
					if results[i][j] != results[0][j] {
						t.Fatalf("concurrent Rank calls disagreed: %v vs %v", results[i], results[0])
					}
				}
			}
		})
	}
}
