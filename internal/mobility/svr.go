package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// SVR is the paper's chosen predictor: two linear support vector regressors
// (one per coordinate) over the standardized recent trajectory, trained by
// stochastic subgradient descent on the epsilon-insensitive loss with L2
// regularization. "Linear SVR showed an accuracy similar to RNN and was
// faster than RNN in terms of both training and testing" (Section IV.B.2).
type SVR struct {
	// Epsilon is the insensitive-tube half width in standardized units.
	Epsilon float64
	// Lambda is the L2 regularization strength.
	Lambda float64
	// Epochs is the number of SGD passes; LR0 the initial learning rate.
	Epochs int
	LR0    float64
	// Seed drives example shuffling.
	Seed int64

	pl   *geo.Placement
	n    int
	norm *Normalizer
	wx   []float64 // weights for predicting x (2n features + bias at end)
	wy   []float64
}

var _ Predictor = (*SVR)(nil)

// Name implements Predictor.
func (s *SVR) Name() string { return "SVR" }

// Fit implements Predictor.
func (s *SVR) Fit(train []trace.Trajectory, pl *geo.Placement, n int) error {
	if err := checkFitArgs(train, pl, n); err != nil {
		return err
	}
	if s.Epsilon <= 0 {
		s.Epsilon = 0.002
	}
	if s.Lambda <= 0 {
		s.Lambda = 1e-6
	}
	if s.Epochs <= 0 {
		s.Epochs = 30
	}
	if s.LR0 <= 0 {
		s.LR0 = 0.05
	}
	s.pl = pl
	s.n = n

	norm, err := FitNormalizer(train)
	if err != nil {
		return err
	}
	s.norm = norm

	wins := Windows(train, n)
	if len(wins) == 0 {
		return fmt.Errorf("mobility: trajectories too short for n=%d", n)
	}
	x := make([][]float64, 0, len(wins))
	yx := make([]float64, 0, len(wins))
	yy := make([]float64, 0, len(wins))
	for _, w := range wins {
		x = append(x, s.features(w.In))
		tgt := norm.ToStd(w.Target)
		yx = append(yx, tgt.X)
		yy = append(yy, tgt.Y)
	}

	rng := rand.New(rand.NewSource(s.Seed + 17))
	s.wx = s.trainOne(x, yx, rng)
	s.wy = s.trainOne(x, yy, rng)
	return nil
}

// features flattens the standardized recent locations; the final slot is
// the bias feature.
func (s *SVR) features(recent []geo.Point) []float64 {
	f := make([]float64, 0, 2*s.n+1)
	// Pad by repeating the oldest point if the history is short.
	for i := 0; i < s.n; i++ {
		j := i - (s.n - len(recent))
		if j < 0 {
			j = 0
		}
		p := s.norm.ToStd(recent[j])
		f = append(f, p.X, p.Y)
	}
	return append(f, 1)
}

// trainOne runs SGD on the epsilon-insensitive subgradient for one output.
func (s *SVR) trainOne(x [][]float64, y []float64, rng *rand.Rand) []float64 {
	w := make([]float64, len(x[0]))
	step := 0
	for e := 0; e < s.Epochs; e++ {
		for _, i := range rng.Perm(len(x)) {
			step++
			lr := s.LR0 / (1 + 0.0005*float64(step))
			pred := dot(w, x[i])
			r := pred - y[i]
			// L2 shrink (bias exempt).
			for j := 0; j < len(w)-1; j++ {
				w[j] -= lr * s.Lambda * w[j]
			}
			switch {
			case r > s.Epsilon:
				for j, v := range x[i] {
					w[j] -= lr * v
				}
			case r < -s.Epsilon:
				for j, v := range x[i] {
					w[j] += lr * v
				}
			}
		}
	}
	return w
}

func dot(w, x []float64) float64 {
	var sum float64
	for i, v := range w {
		sum += v * x[i]
	}
	return sum
}

// PredictPoint implements Predictor.
func (s *SVR) PredictPoint(recent []geo.Point) (geo.Point, bool) {
	if s.wx == nil || len(recent) == 0 {
		return geo.Point{}, false
	}
	f := s.features(recent)
	return s.norm.FromStd(geo.Point{X: dot(s.wx, f), Y: dot(s.wy, f)}), true
}

// Rank implements Predictor: the k servers nearest the predicted point.
func (s *SVR) Rank(recent []geo.Point, k int) []geo.ServerID {
	pt, ok := s.PredictPoint(recent)
	if !ok {
		return nil
	}
	return s.pl.Nearest(pt, k)
}

// MAE returns the mean absolute position error (meters) over test windows,
// the per-point metric of Table III and Fig 6.
func MAE(p Predictor, wins []Window) (float64, error) {
	if len(wins) == 0 {
		return 0, fmt.Errorf("mobility: no evaluation windows")
	}
	var sum float64
	var cnt int
	for _, w := range wins {
		pt, ok := p.PredictPoint(w.In)
		if !ok {
			return 0, fmt.Errorf("mobility: %s is not coordinate-based", p.Name())
		}
		sum += math.Abs(pt.X-w.Target.X)/2 + math.Abs(pt.Y-w.Target.Y)/2
		cnt++
	}
	return sum / float64(cnt), nil
}
