package mobility

import (
	"testing"
	"time"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

func sensitivityDataset(t *testing.T) *trace.Dataset {
	t.Helper()
	cfg := trace.GeolifeConfig()
	cfg.TrainUsers = 8
	cfg.TestUsers = 5
	cfg.Duration = 50 * time.Minute
	base, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestRunSensitivityShapes(t *testing.T) {
	base := sensitivityDataset(t)
	cfg := SensitivityConfig{
		Ns:              []int{1, 2, 5},
		NIntervals:      []time.Duration{20 * time.Second},
		TIntervals:      []time.Duration{15 * time.Second, 30 * time.Second, 60 * time.Second},
		NFixed:          5,
		CellRadius:      50,
		MaxTrainWindows: 3000,
	}
	res, err := RunSensitivity(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Left plot: n=1 must be much worse than n=2 (the paper's key finding:
	// "the prediction error dropped when n is two").
	maes := res.MAEByN[20*time.Second]
	if len(maes) != 3 {
		t.Fatalf("MAE series length %d", len(maes))
	}
	if maes[0] < maes[1]*1.5 {
		t.Errorf("n=1 MAE %.1f not clearly worse than n=2 %.1f", maes[0], maes[1])
	}
	// Right plot: futility decreases with the interval; MAE increases.
	for i := 1; i < len(res.Intervals); i++ {
		if res.FutileRatio[i] > res.FutileRatio[i-1] {
			t.Errorf("futile ratio rose with interval: %v", res.FutileRatio)
		}
		if res.MAEByInterval[i] < res.MAEByInterval[i-1] {
			t.Errorf("MAE fell with interval: %v", res.MAEByInterval)
		}
	}
	// A best interval was selected from the sweep.
	found := false
	for _, it := range cfg.TIntervals {
		if res.BestInterval == it {
			found = true
		}
	}
	if !found {
		t.Errorf("best interval %v not among swept values", res.BestInterval)
	}
	for _, bc := range res.BenefitCost {
		if bc < 0 || bc > 1 {
			t.Errorf("benefit/cost %v out of [0,1]", bc)
		}
	}
}

func TestRunSensitivityDefaultsOnBadConfig(t *testing.T) {
	base := sensitivityDataset(t)
	// An empty config falls back to the full default sweep; just check it
	// does not error with a truncated version derived from defaults.
	cfg := DefaultSensitivityConfig()
	cfg.Ns = cfg.Ns[:2]
	cfg.NIntervals = cfg.NIntervals[:1]
	cfg.TIntervals = cfg.TIntervals[:2]
	cfg.MaxTrainWindows = 1500
	if _, err := RunSensitivity(base, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLinearPredictor(t *testing.T) {
	l := &Linear{}
	if _, ok := l.PredictPoint(nil); ok {
		t.Error("empty history predicted")
	}
	pt, ok := l.PredictPoint([]geo.Point{{X: 1, Y: 1}, {X: 3, Y: 2}})
	if !ok {
		t.Fatal("no prediction")
	}
	if pt != (geo.Point{X: 5, Y: 3}) {
		t.Errorf("dead reckoning = %v, want (5,3)", pt)
	}
	// Single point: predicted to stay.
	pt, ok = l.PredictPoint([]geo.Point{{X: 2, Y: 2}})
	if !ok || pt != (geo.Point{X: 2, Y: 2}) {
		t.Errorf("single-point prediction = %v", pt)
	}
	// Without a placement, Rank returns nothing.
	if got := l.Rank([]geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}, 2); got != nil {
		t.Errorf("rank without placement = %v", got)
	}
	pl := geo.NewPlacement(geo.NewHexGrid(50), []geo.Point{{}, {X: 500, Y: 0}})
	l.FitPlacement(pl)
	ranked := l.Rank([]geo.Point{{X: 400, Y: 0}, {X: 450, Y: 0}}, 1)
	if len(ranked) != 1 || ranked[0] != pl.ServerAt(geo.Point{X: 500, Y: 0}) {
		t.Errorf("rank = %v", ranked)
	}
}
