package mobility

import (
	"fmt"
	"time"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// SensitivityResult holds the Fig 6 outputs: prediction MAE as a function
// of trajectory length n for several intervals (left plot), and futile
// ratio / MAE / benefit-to-cost ratio as functions of the interval t (right
// plot plus the Eq. 1-2 interval selection).
type SensitivityResult struct {
	// Ns are the evaluated trajectory lengths.
	Ns []int
	// Intervals are the evaluated sampling intervals.
	Intervals []time.Duration
	// MAEByN[t][j] is the SVR MAE (meters) at interval t and n = Ns[j].
	MAEByN map[time.Duration][]float64
	// FutileRatio[i], MAEByInterval[i], and BenefitCost[i] correspond to
	// Intervals[i], all at n = NFixed.
	FutileRatio   []float64
	MAEByInterval []float64
	BenefitCost   []float64
	// NFixed is the trajectory length used for the interval sweep.
	NFixed int
	// BestInterval maximizes the benefit-to-cost ratio.
	BestInterval time.Duration
}

// SensitivityConfig controls the Fig 6 experiment.
type SensitivityConfig struct {
	// Ns to sweep in the left plot (default 1..8).
	Ns []int
	// NIntervals are the intervals of the left plot (default 15-30 s).
	NIntervals []time.Duration
	// TIntervals are the intervals of the right plot (default 15-60 s).
	TIntervals []time.Duration
	// NFixed is the trajectory length for the interval sweep (paper: 5).
	NFixed int
	// CellRadius is the hex cell radius for server placement (50 m).
	CellRadius float64
	// MaxTrainWindows caps SVR training set size per fit.
	MaxTrainWindows int
}

// DefaultSensitivityConfig matches the paper's sweeps.
func DefaultSensitivityConfig() SensitivityConfig {
	secs := func(vs ...int) []time.Duration {
		out := make([]time.Duration, 0, len(vs))
		for _, v := range vs {
			out = append(out, time.Duration(v)*time.Second)
		}
		return out
	}
	return SensitivityConfig{
		Ns:              []int{1, 2, 3, 4, 5, 6, 7, 8},
		NIntervals:      secs(15, 20, 25, 30),
		TIntervals:      secs(15, 20, 25, 30, 35, 40, 45, 50, 55, 60),
		NFixed:          5,
		CellRadius:      50,
		MaxTrainWindows: 12000,
	}
}

// RunSensitivity performs the Fig 6 analysis on a base dataset (sampled at
// its native interval; every swept interval must be a multiple of it).
func RunSensitivity(base *trace.Dataset, cfg SensitivityConfig) (*SensitivityResult, error) {
	if len(cfg.Ns) == 0 {
		cfg = DefaultSensitivityConfig()
	}
	res := &SensitivityResult{
		Ns:        cfg.Ns,
		Intervals: cfg.TIntervals,
		MAEByN:    make(map[time.Duration][]float64, len(cfg.NIntervals)),
		NFixed:    cfg.NFixed,
	}

	// Left plot: MAE vs n for each interval.
	for _, t := range cfg.NIntervals {
		ds, err := base.Resample(t)
		if err != nil {
			return nil, fmt.Errorf("mobility: sensitivity resample: %w", err)
		}
		pl := geo.NewPlacement(geo.NewHexGrid(cfg.CellRadius), ds.AllPoints())
		maes := make([]float64, 0, len(cfg.Ns))
		for _, n := range cfg.Ns {
			svr := &SVR{Seed: 1}
			if err := fitSVRCapped(svr, ds.Train, pl, n, cfg.MaxTrainWindows); err != nil {
				return nil, err
			}
			mae, err := MAE(svr, Windows(ds.Test, n))
			if err != nil {
				return nil, err
			}
			maes = append(maes, mae)
		}
		res.MAEByN[t] = maes
	}

	// Right plot: futile ratio, MAE and benefit/cost vs interval at NFixed.
	best := -1.0
	for _, t := range cfg.TIntervals {
		ds, err := base.Resample(t)
		if err != nil {
			return nil, fmt.Errorf("mobility: sensitivity resample: %w", err)
		}
		pl := geo.NewPlacement(geo.NewHexGrid(cfg.CellRadius), ds.AllPoints())

		svr := &SVR{Seed: 1}
		if err := fitSVRCapped(svr, ds.Train, pl, cfg.NFixed, cfg.MaxTrainWindows); err != nil {
			return nil, err
		}
		mae, err := MAE(svr, Windows(ds.Test, cfg.NFixed))
		if err != nil {
			return nil, err
		}
		futile := FutileRatio(ds.Test, pl, cfg.NFixed)

		// Eq. 1-2: benefit ∝ a (p - f), cost ∝ p, with a "the prediction
		// accuracy when the predicted location is inside the service
		// range of the next edge server" — the predicted point must land
		// within a cell radius of the next server's center.
		a := serviceRangeAccuracy(svr, ds.Test, pl, cfg.NFixed, cfg.CellRadius)
		bc := a * (1 - futile)

		res.FutileRatio = append(res.FutileRatio, futile)
		res.MAEByInterval = append(res.MAEByInterval, mae)
		res.BenefitCost = append(res.BenefitCost, bc)
		if bc > best {
			best = bc
			res.BestInterval = t
		}
	}
	return res, nil
}

// serviceRangeAccuracy returns the fraction of non-futile predictions whose
// predicted point lands within `radius` of the actual next server's center.
func serviceRangeAccuracy(p Predictor, test []trace.Trajectory, pl *geo.Placement, n int, radius float64) float64 {
	var hits, total int
	for _, tr := range test {
		for i := n - 1; i+1 < tr.Len(); i++ {
			cur := nearestServer(pl, tr.Points[i])
			next := nearestServer(pl, tr.Points[i+1])
			if cur == next || next == geo.NoServer {
				continue
			}
			total++
			pt, ok := p.PredictPoint(tr.Points[i-n+1 : i+1])
			if !ok {
				continue
			}
			if pt.Dist(pl.Center(next)) <= radius {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// fitSVRCapped trains an SVR on at most maxWindows training windows by
// truncating each trajectory proportionally — enough signal for the sweep
// at a fraction of the cost.
func fitSVRCapped(svr *SVR, train []trace.Trajectory, pl *geo.Placement, n, maxWindows int) error {
	total := 0
	for _, tr := range train {
		total += tr.Len()
	}
	if maxWindows > 0 && total > maxWindows {
		frac := float64(maxWindows) / float64(total)
		capped := make([]trace.Trajectory, 0, len(train))
		for _, tr := range train {
			keep := int(float64(tr.Len()) * frac)
			if keep < n+2 {
				continue
			}
			capped = append(capped, trace.Trajectory{User: tr.User, Interval: tr.Interval, Points: tr.Points[:keep]})
		}
		if len(capped) > 0 {
			train = capped
		}
	}
	return svr.Fit(train, pl, n)
}
