package mobility

import (
	"math"
	"testing"
	"time"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// testEnv generates a small resampled dataset and its placement.
func testEnv(t *testing.T, cfg trace.Config, interval time.Duration) (*trace.Dataset, *geo.Placement) {
	t.Helper()
	cfg.TrainUsers = 12
	cfg.TestUsers = 6
	cfg.Duration = 90 * time.Minute
	base, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := base.Resample(interval)
	if err != nil {
		t.Fatal(err)
	}
	pl := geo.NewPlacement(geo.NewHexGrid(50), ds.AllPoints())
	return ds, pl
}

func TestWindows(t *testing.T) {
	tr := trace.Trajectory{Interval: time.Second, Points: []geo.Point{
		{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 4},
	}}
	wins := Windows([]trace.Trajectory{tr}, 2)
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	if wins[0].In[0].X != 0 || wins[0].In[1].X != 1 || wins[0].Target.X != 2 {
		t.Errorf("window 0 = %+v", wins[0])
	}
	if wins[2].Target.X != 4 {
		t.Errorf("window 2 target = %v", wins[2].Target)
	}
	if Windows(nil, 0) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	trs := []trace.Trajectory{{Points: []geo.Point{{X: 0, Y: 10}, {X: 10, Y: 30}, {X: 20, Y: 50}}}}
	z, err := FitNormalizer(trs)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 7, Y: 22}
	back := z.FromStd(z.ToStd(p))
	if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
		t.Errorf("round trip %v -> %v", p, back)
	}
	std := z.ToStd(geo.Point{X: 10, Y: 30})
	if math.Abs(std.X) > 1e-9 || math.Abs(std.Y) > 1e-9 {
		t.Errorf("mean does not map to origin: %v", std)
	}
	if _, err := FitNormalizer(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFitValidation(t *testing.T) {
	ds, pl := testEnv(t, trace.KAISTConfig(), 20*time.Second)
	for _, p := range []Predictor{&Markov{}, &SVR{Seed: 1}, &LSTM{Seed: 1, Epochs: 1, MaxExamples: 50}} {
		if err := p.Fit(nil, pl, 5); err == nil {
			t.Errorf("%s: accepted empty training set", p.Name())
		}
		if err := p.Fit(ds.Train, nil, 5); err == nil {
			t.Errorf("%s: accepted nil placement", p.Name())
		}
		if err := p.Fit(ds.Train, pl, 0); err == nil {
			t.Errorf("%s: accepted n=0", p.Name())
		}
	}
}

// TestSVRBeatsStandStill verifies the SVR learns motion: its MAE must be
// well below the trivial "predict the current position" baseline on the
// fast urban dataset.
func TestSVRBeatsStandStill(t *testing.T) {
	ds, pl := testEnv(t, trace.GeolifeConfig(), 20*time.Second)
	svr := &SVR{Seed: 1}
	if err := svr.Fit(ds.Train, pl, 5); err != nil {
		t.Fatal(err)
	}
	wins := Windows(ds.Test, 5)
	mae, err := MAE(svr, wins)
	if err != nil {
		t.Fatal(err)
	}
	var still float64
	for _, w := range wins {
		last := w.In[len(w.In)-1]
		still += math.Abs(last.X-w.Target.X)/2 + math.Abs(last.Y-w.Target.Y)/2
	}
	still /= float64(len(wins))
	if mae >= still*0.8 {
		t.Errorf("SVR MAE %.1fm not clearly below stand-still %.1fm", mae, still)
	}
}

func TestSVRPredictsLinearMotion(t *testing.T) {
	// A constant-velocity synthetic corpus: the linear SVR must learn the
	// extrapolation next = last + (last - prev) almost exactly.
	mk := func(x0, y0, vx, vy float64) trace.Trajectory {
		pts := make([]geo.Point, 40)
		for i := range pts {
			pts[i] = geo.Point{X: x0 + vx*float64(i), Y: y0 + vy*float64(i)}
		}
		return trace.Trajectory{Interval: time.Second, Points: pts}
	}
	var train []trace.Trajectory
	for i := 0; i < 20; i++ {
		train = append(train, mk(float64(i*40), float64(i*25), float64(i%5)-2, float64(i%3)-1))
	}
	pl := geo.NewPlacement(geo.NewHexGrid(50), []geo.Point{{X: 100, Y: 100}})
	svr := &SVR{Seed: 1, Epochs: 60}
	if err := svr.Fit(train, pl, 3); err != nil {
		t.Fatal(err)
	}
	pt, ok := svr.PredictPoint([]geo.Point{{X: 10, Y: 10}, {X: 13, Y: 11}, {X: 16, Y: 12}})
	if !ok {
		t.Fatal("not coordinate-based")
	}
	if math.Abs(pt.X-19) > 3 || math.Abs(pt.Y-13) > 3 {
		t.Errorf("extrapolation = %v, want ~(19,13)", pt)
	}
}

func TestMarkovRanksRoutineTransitions(t *testing.T) {
	// Users alternate between two fixed cells; the Markov model must rank
	// the other cell first when the user is about to move.
	g := geo.NewHexGrid(50)
	a := g.Center(geo.HexCell{Q: 0, R: 0})
	b := g.Center(geo.HexCell{Q: 5, R: 0})
	pts := make([]geo.Point, 0, 40)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			pts = append(pts, a)
		} else {
			pts = append(pts, b)
		}
	}
	train := []trace.Trajectory{{Interval: time.Second, Points: pts}}
	pl := geo.NewPlacement(g, []geo.Point{a, b})
	m := &Markov{}
	if err := m.Fit(train, pl, 5); err != nil {
		t.Fatal(err)
	}
	ranked := m.Rank([]geo.Point{b, a, b, a, b}, 2)
	if len(ranked) == 0 {
		t.Fatal("no ranking")
	}
	if ranked[0] != pl.ServerAt(a) {
		t.Errorf("top-1 = %v, want server at a (%v)", ranked[0], pl.ServerAt(a))
	}
	if _, ok := m.PredictPoint(pts); ok {
		t.Error("Markov claims to be coordinate-based")
	}
}

func TestLSTMLearnsOnSyntheticData(t *testing.T) {
	// Constant-velocity tracks again: after training, the LSTM must be far
	// more accurate than an untrained one.
	mk := func(x0, y0, vx, vy float64) trace.Trajectory {
		pts := make([]geo.Point, 30)
		for i := range pts {
			pts[i] = geo.Point{X: x0 + vx*float64(i), Y: y0 + vy*float64(i)}
		}
		return trace.Trajectory{Interval: time.Second, Points: pts}
	}
	var train []trace.Trajectory
	for i := 0; i < 12; i++ {
		train = append(train, mk(float64(i*30), float64(i*20), float64(i%5)-2, float64(i%4)-1.5))
	}
	pl := geo.NewPlacement(geo.NewHexGrid(50), []geo.Point{{X: 100, Y: 100}})

	lstm := &LSTM{Hidden: 12, Epochs: 40, Seed: 1, MaxExamples: 500}
	if err := lstm.Fit(train, pl, 4); err != nil {
		t.Fatal(err)
	}
	wins := Windows(train[:4], 4)
	mae, err := MAE(lstm, wins)
	if err != nil {
		t.Fatal(err)
	}
	// Positions span hundreds of meters; a trained model must track them
	// to within a few meters on in-distribution data.
	if mae > 15 {
		t.Errorf("LSTM training MAE %.1fm, want <= 15m", mae)
	}
}

func TestEvaluatePredictorProtocol(t *testing.T) {
	ds, pl := testEnv(t, trace.GeolifeConfig(), 20*time.Second)
	svr := &SVR{Seed: 1}
	if err := svr.Fit(ds.Train, pl, 5); err != nil {
		t.Fatal(err)
	}
	res, err := EvaluatePredictor(svr, ds.Test, pl, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Top2 < res.Top1 {
		t.Errorf("top2 %.1f < top1 %.1f", res.Top2, res.Top1)
	}
	if res.Top1 < 0 || res.Top2 > 100 {
		t.Errorf("accuracy out of range: %+v", res)
	}
	if res.Evaluated == 0 {
		t.Error("nothing evaluated")
	}
	if math.IsNaN(res.MAEMeters) || res.MAEMeters <= 0 {
		t.Errorf("MAE = %v", res.MAEMeters)
	}
	if _, err := EvaluatePredictor(svr, nil, pl, 5); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestFutileRatioBounds(t *testing.T) {
	ds, pl := testEnv(t, trace.KAISTConfig(), 20*time.Second)
	r := FutileRatio(ds.Test, pl, 5)
	if r <= 0 || r >= 1 {
		t.Errorf("futile ratio = %v, want in (0,1)", r)
	}
	// Slower sampling must reduce futility (the client moves further per
	// step).
	ds60, err := ds.Resample(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r60 := FutileRatio(ds60.Test, pl, 5)
	if r60 >= r {
		t.Errorf("futile ratio did not drop with interval: %v -> %v", r, r60)
	}
}
