// Package mobility implements PerDNN's mobility prediction (Section III.D):
// given a client's n most recent locations sampled every t seconds, predict
// where the client will be after the next interval, and rank the edge
// servers to migrate DNN layers to. Three predictors are provided, matching
// the paper's comparison (Table III): a variable-order Markov model over
// server identifiers built as a prediction suffix tree, a linear support
// vector regressor trained with SGD on the epsilon-insensitive loss, and a
// from-scratch LSTM recurrent network trained with Adam — all on the
// standard library.
package mobility

import (
	"errors"
	"fmt"
	"math"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// Predictor ranks the edge servers a client is most likely to visit next.
// Coordinate-based predictors (SVR, LSTM) expose the raw predicted point as
// well; the Markov model only ranks discrete servers.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Fit trains on the training split. n is the trajectory length (number
	// of recent locations used per prediction); pl maps locations to edge
	// servers for discrete predictors and top-k ranking.
	Fit(train []trace.Trajectory, pl *geo.Placement, n int) error
	// Rank returns up to k candidate next servers, most likely first.
	// recent holds the client's n most recent locations, oldest first.
	Rank(recent []geo.Point, k int) []geo.ServerID
	// PredictPoint returns the predicted next coordinates; ok reports
	// whether the predictor is coordinate-based.
	PredictPoint(recent []geo.Point) (pt geo.Point, ok bool)
}

// Window is one supervised training example: n consecutive locations and
// the location one interval later.
type Window struct {
	In     []geo.Point
	Target geo.Point
}

// Windows slices every trajectory into sliding prediction windows of
// length n.
func Windows(trs []trace.Trajectory, n int) []Window {
	if n <= 0 {
		return nil
	}
	out := make([]Window, 0, 1024)
	for _, tr := range trs {
		for i := 0; i+n < tr.Len(); i++ {
			out = append(out, Window{In: tr.Points[i : i+n], Target: tr.Points[i+n]})
		}
	}
	return out
}

// Normalizer converts coordinates to standard scores, fit on training data
// ("the x, y coordinates were normalized to standard scores before fed into
// the SVR model").
type Normalizer struct {
	Mean geo.Point
	Std  geo.Point
}

// FitNormalizer computes the per-axis mean and standard deviation over all
// points of the training trajectories.
func FitNormalizer(trs []trace.Trajectory) (*Normalizer, error) {
	var n float64
	var sum geo.Point
	for _, tr := range trs {
		for _, p := range tr.Points {
			sum = sum.Add(p)
			n++
		}
	}
	if n == 0 {
		return nil, errors.New("mobility: no training points")
	}
	mean := sum.Scale(1 / n)
	var varAcc geo.Point
	for _, tr := range trs {
		for _, p := range tr.Points {
			d := p.Sub(mean)
			varAcc.X += d.X * d.X
			varAcc.Y += d.Y * d.Y
		}
	}
	std := geo.Point{X: math.Sqrt(varAcc.X / n), Y: math.Sqrt(varAcc.Y / n)}
	if std.X < 1e-9 {
		std.X = 1
	}
	if std.Y < 1e-9 {
		std.Y = 1
	}
	return &Normalizer{Mean: mean, Std: std}, nil
}

// ToStd converts a point to standard scores.
func (z *Normalizer) ToStd(p geo.Point) geo.Point {
	return geo.Point{X: (p.X - z.Mean.X) / z.Std.X, Y: (p.Y - z.Mean.Y) / z.Std.Y}
}

// FromStd converts standard scores back to coordinates.
func (z *Normalizer) FromStd(p geo.Point) geo.Point {
	return geo.Point{X: p.X*z.Std.X + z.Mean.X, Y: p.Y*z.Std.Y + z.Mean.Y}
}

// checkFitArgs validates the common Fit inputs.
func checkFitArgs(train []trace.Trajectory, pl *geo.Placement, n int) error {
	if len(train) == 0 {
		return errors.New("mobility: no training trajectories")
	}
	if pl == nil {
		return errors.New("mobility: placement required")
	}
	if n <= 0 {
		return fmt.Errorf("mobility: trajectory length %d", n)
	}
	return nil
}
