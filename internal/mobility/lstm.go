package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// LSTM is the recurrent baseline of Table III: a single LSTM cell reads the
// standardized recent trajectory and a linear output layer emits the
// predicted coordinates. Trained from scratch with backpropagation through
// time, MAE loss, and the Adam optimizer (lr 0.001), per Section III.D.
type LSTM struct {
	// Hidden is the cell state width (the paper uses 16-32).
	Hidden int
	// Epochs, BatchSize, LR configure training.
	Epochs    int
	BatchSize int
	LR        float64
	// MaxExamples subsamples the training windows to bound training time.
	MaxExamples int
	// Seed drives initialization and shuffling.
	Seed int64

	pl   *geo.Placement
	n    int
	norm *Normalizer

	// Flat parameter vector and Adam state.
	theta, m, v []float64
	adamT       int

	// Cached dimensions.
	inDim, hid int
}

var _ Predictor = (*LSTM)(nil)

// Name implements Predictor.
func (l *LSTM) Name() string { return "RNN" }

// Parameter layout offsets within theta.
func (l *LSTM) offsets() (wEnd, bEnd, vEnd, cEnd int) {
	h, d := l.hid, l.inDim
	wEnd = 4 * h * (d + h)
	bEnd = wEnd + 4*h
	vEnd = bEnd + 2*h
	cEnd = vEnd + 2
	return
}

// Fit implements Predictor.
func (l *LSTM) Fit(train []trace.Trajectory, pl *geo.Placement, n int) error {
	if err := checkFitArgs(train, pl, n); err != nil {
		return err
	}
	if l.Hidden <= 0 {
		l.Hidden = 16
	}
	if l.Epochs <= 0 {
		l.Epochs = 20
	}
	if l.BatchSize <= 0 {
		l.BatchSize = 32
	}
	if l.LR <= 0 {
		l.LR = 0.001
	}
	if l.MaxExamples <= 0 {
		l.MaxExamples = 3000
	}
	l.pl = pl
	l.n = n
	l.inDim = 2
	l.hid = l.Hidden

	norm, err := FitNormalizer(train)
	if err != nil {
		return err
	}
	l.norm = norm

	wins := Windows(train, n)
	if len(wins) == 0 {
		return fmt.Errorf("mobility: trajectories too short for n=%d", n)
	}
	rng := rand.New(rand.NewSource(l.Seed + 29))
	if len(wins) > l.MaxExamples {
		idx := rng.Perm(len(wins))[:l.MaxExamples]
		sub := make([]Window, 0, l.MaxExamples)
		for _, i := range idx {
			sub = append(sub, wins[i])
		}
		wins = sub
	}

	_, _, _, pTotal := l.offsets()
	l.theta = make([]float64, pTotal)
	l.m = make([]float64, pTotal)
	l.v = make([]float64, pTotal)
	// Glorot-ish init.
	scale := 1 / math.Sqrt(float64(l.hid+l.inDim))
	for i := range l.theta {
		l.theta[i] = rng.NormFloat64() * scale
	}
	// Forget-gate bias starts positive for stable early training.
	wEnd, _, _, _ := l.offsets()
	for i := 0; i < l.hid; i++ {
		l.theta[wEnd+l.hid+i] = 1
	}

	grad := make([]float64, pTotal)
	for e := 0; e < l.Epochs; e++ {
		perm := rng.Perm(len(wins))
		for start := 0; start < len(perm); start += l.BatchSize {
			end := start + l.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			for i := range grad {
				grad[i] = 0
			}
			for _, wi := range perm[start:end] {
				l.backward(wins[wi], grad)
			}
			l.adamStep(grad, float64(end-start))
		}
	}
	return nil
}

// forward runs the cell over the window and returns the prediction in
// standard scores plus the cached activations needed for backprop.
type lstmTrace struct {
	xs              [][]float64 // inputs per step
	hs, cs          [][]float64 // states per step (index 0 = initial zeros)
	gi, gf, go_, gg [][]float64
	tanhC           [][]float64
	out             [2]float64
}

func (l *LSTM) forward(recent []geo.Point) *lstmTrace {
	h, d := l.hid, l.inDim
	wEnd, bEnd, vEnd, _ := l.offsets()
	W := l.theta[:wEnd]
	b := l.theta[wEnd:bEnd]
	V := l.theta[bEnd:vEnd]
	c2 := l.theta[vEnd:]

	steps := l.n
	tr := &lstmTrace{
		xs:    make([][]float64, steps),
		hs:    make([][]float64, steps+1),
		cs:    make([][]float64, steps+1),
		gi:    make([][]float64, steps),
		gf:    make([][]float64, steps),
		go_:   make([][]float64, steps),
		gg:    make([][]float64, steps),
		tanhC: make([][]float64, steps),
	}
	tr.hs[0] = make([]float64, h)
	tr.cs[0] = make([]float64, h)

	for t := 0; t < steps; t++ {
		// Repeat the oldest point when the history is short.
		j := t - (steps - len(recent))
		if j < 0 {
			j = 0
		}
		p := l.norm.ToStd(recent[j])
		x := []float64{p.X, p.Y}
		tr.xs[t] = x

		hi, fi, oi, gi := make([]float64, h), make([]float64, h), make([]float64, h), make([]float64, h)
		hNew, cNew, tc := make([]float64, h), make([]float64, h), make([]float64, h)
		for r := 0; r < 4*h; r++ {
			sum := b[r]
			row := W[r*(d+h) : (r+1)*(d+h)]
			for k := 0; k < d; k++ {
				sum += row[k] * x[k]
			}
			for k := 0; k < h; k++ {
				sum += row[d+k] * tr.hs[t][k]
			}
			switch r / h {
			case 0:
				hi[r%h] = sigmoid(sum)
			case 1:
				fi[r%h] = sigmoid(sum)
			case 2:
				oi[r%h] = sigmoid(sum)
			default:
				gi[r%h] = math.Tanh(sum)
			}
		}
		for k := 0; k < h; k++ {
			cNew[k] = fi[k]*tr.cs[t][k] + hi[k]*gi[k]
			tc[k] = math.Tanh(cNew[k])
			hNew[k] = oi[k] * tc[k]
		}
		tr.gi[t], tr.gf[t], tr.go_[t], tr.gg[t] = hi, fi, oi, gi
		tr.cs[t+1], tr.hs[t+1], tr.tanhC[t] = cNew, hNew, tc
	}
	for o := 0; o < 2; o++ {
		sum := c2[o]
		for k := 0; k < h; k++ {
			sum += V[o*h+k] * tr.hs[steps][k]
		}
		tr.out[o] = sum
	}
	return tr
}

// backward accumulates the MAE-loss gradient of one window into grad.
func (l *LSTM) backward(w Window, grad []float64) {
	h, d := l.hid, l.inDim
	wEnd, bEnd, vEnd, _ := l.offsets()
	W := l.theta[:wEnd]
	V := l.theta[bEnd:vEnd]

	tr := l.forward(w.In)
	tgt := l.norm.ToStd(w.Target)

	// MAE loss subgradient on outputs.
	dOut := [2]float64{signf(tr.out[0]-tgt.X) / 2, signf(tr.out[1]-tgt.Y) / 2}

	dh := make([]float64, h)
	for o := 0; o < 2; o++ {
		grad[vEnd+o] += dOut[o]
		for k := 0; k < h; k++ {
			grad[bEnd+o*h+k] += dOut[o] * tr.hs[l.n][k]
			dh[k] += V[o*h+k] * dOut[o]
		}
	}

	dc := make([]float64, h)
	dz := make([]float64, 4*h)
	for t := l.n - 1; t >= 0; t-- {
		hi, fi, oi, gi := tr.gi[t], tr.gf[t], tr.go_[t], tr.gg[t]
		for k := 0; k < h; k++ {
			tc := tr.tanhC[t]
			dck := dc[k] + dh[k]*oi[k]*(1-tc[k]*tc[k])
			do := dh[k] * tc[k]
			di := dck * gi[k]
			dg := dck * hi[k]
			df := dck * tr.cs[t][k]
			dz[k] = di * hi[k] * (1 - hi[k])
			dz[h+k] = df * fi[k] * (1 - fi[k])
			dz[2*h+k] = do * oi[k] * (1 - oi[k])
			dz[3*h+k] = dg * (1 - gi[k]*gi[k])
			dc[k] = dck * fi[k]
		}
		for k := 0; k < h; k++ {
			dh[k] = 0
		}
		for r := 0; r < 4*h; r++ {
			row := W[r*(d+h) : (r+1)*(d+h)]
			gRow := grad[r*(d+h) : (r+1)*(d+h)]
			for k := 0; k < d; k++ {
				gRow[k] += dz[r] * tr.xs[t][k]
			}
			for k := 0; k < h; k++ {
				gRow[d+k] += dz[r] * tr.hs[t][k]
				dh[k] += row[d+k] * dz[r]
			}
			grad[wEnd+r] += dz[r]
		}
	}
}

// adamStep applies one Adam update with the accumulated batch gradient.
func (l *LSTM) adamStep(grad []float64, batch float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	l.adamT++
	bc1 := 1 - math.Pow(beta1, float64(l.adamT))
	bc2 := 1 - math.Pow(beta2, float64(l.adamT))
	for i := range l.theta {
		g := grad[i] / batch
		l.m[i] = beta1*l.m[i] + (1-beta1)*g
		l.v[i] = beta2*l.v[i] + (1-beta2)*g*g
		l.theta[i] -= l.LR * (l.m[i] / bc1) / (math.Sqrt(l.v[i]/bc2) + eps)
	}
}

// PredictPoint implements Predictor.
func (l *LSTM) PredictPoint(recent []geo.Point) (geo.Point, bool) {
	if l.theta == nil || len(recent) == 0 {
		return geo.Point{}, false
	}
	tr := l.forward(recent)
	return l.norm.FromStd(geo.Point{X: tr.out[0], Y: tr.out[1]}), true
}

// Rank implements Predictor.
func (l *LSTM) Rank(recent []geo.Point, k int) []geo.ServerID {
	pt, ok := l.PredictPoint(recent)
	if !ok {
		return nil
	}
	return l.pl.Nearest(pt, k)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func signf(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
