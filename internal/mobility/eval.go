package mobility

import (
	"fmt"
	"math"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// EvalResult is one row of Table III: top-1/top-2 edge-server prediction
// accuracy and, for coordinate-based predictors, the mean absolute position
// error in meters.
type EvalResult struct {
	Name string
	// Top1 and Top2 are accuracies in percent over non-futile predictions.
	Top1 float64
	Top2 float64
	// MAEMeters is the position error; NaN for discrete predictors.
	MAEMeters float64
	// Evaluated is the number of non-futile predictions scored; Futile the
	// number excluded because the client stayed in the same server.
	Evaluated int
	Futile    int
}

// EvaluatePredictor scores a trained predictor on the test split following
// the Table III protocol: only non-futile predictions count (the client
// actually moves to a different server at the next step); top-k is a hit
// when the actual next server is among the k ranked candidates.
func EvaluatePredictor(p Predictor, test []trace.Trajectory, pl *geo.Placement, n int) (EvalResult, error) {
	if len(test) == 0 {
		return EvalResult{}, fmt.Errorf("mobility: no test trajectories")
	}
	res := EvalResult{Name: p.Name(), MAEMeters: math.NaN()}
	var maeSum float64
	var maeCnt int

	for _, tr := range test {
		for i := n - 1; i+1 < tr.Len(); i++ {
			recent := tr.Points[i-n+1 : i+1]
			cur := nearestServer(pl, tr.Points[i])
			next := nearestServer(pl, tr.Points[i+1])
			if cur == next {
				res.Futile++
				continue
			}
			res.Evaluated++
			ranked := p.Rank(recent, 2)
			if len(ranked) > 0 && ranked[0] == next {
				res.Top1++
				res.Top2++
			} else if len(ranked) > 1 && ranked[1] == next {
				res.Top2++
			}
			if pt, ok := p.PredictPoint(recent); ok {
				maeSum += math.Abs(pt.X-tr.Points[i+1].X)/2 + math.Abs(pt.Y-tr.Points[i+1].Y)/2
				maeCnt++
			}
		}
	}
	if res.Evaluated == 0 {
		return res, fmt.Errorf("mobility: no non-futile predictions for %s", p.Name())
	}
	res.Top1 = res.Top1 / float64(res.Evaluated) * 100
	res.Top2 = res.Top2 / float64(res.Evaluated) * 100
	if maeCnt > 0 {
		res.MAEMeters = maeSum / float64(maeCnt)
	}
	return res, nil
}

// nearestServer maps a point to its serving edge server, falling back to
// the nearest one when the point's own cell has none.
func nearestServer(pl *geo.Placement, p geo.Point) geo.ServerID {
	if id := pl.ServerAt(p); id != geo.NoServer {
		return id
	}
	near := pl.Nearest(p, 1)
	if len(near) == 0 {
		return geo.NoServer
	}
	return near[0]
}

// FutileRatio returns the fraction of prediction opportunities in the test
// split where the client stays in the same server for the next step.
func FutileRatio(test []trace.Trajectory, pl *geo.Placement, n int) float64 {
	var futile, total int
	for _, tr := range test {
		for i := n - 1; i+1 < tr.Len(); i++ {
			total++
			if nearestServer(pl, tr.Points[i]) == nearestServer(pl, tr.Points[i+1]) {
				futile++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(futile) / float64(total)
}
