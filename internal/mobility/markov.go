package mobility

import (
	"sort"

	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// Markov is the discrete baseline of Table III: client locations are mapped
// to the identifier of the closest edge server and a variable-order Markov
// model — a prediction suffix tree built from sequence frequencies — ranks
// the next server. Given a fresh trajectory, the longest matching context
// is found and, following Jacquet et al.'s universal predictor, only a
// fraction (SubseqRatio) of that context is used for the final prediction.
type Markov struct {
	// MaxOrder bounds the suffix-tree depth (default: the trajectory
	// length n given to Fit).
	MaxOrder int
	// SubseqRatio is the fraction of the longest matching context used for
	// prediction (the paper's a = 0.7).
	SubseqRatio float64

	pl   *geo.Placement
	n    int
	root *pstNode
}

var _ Predictor = (*Markov)(nil)

// pstNode is a prediction suffix tree node: children index by the *previous*
// symbol (contexts are stored reversed), counts index by the next symbol.
type pstNode struct {
	children map[geo.ServerID]*pstNode
	counts   map[geo.ServerID]int
}

func newPSTNode() *pstNode {
	return &pstNode{
		children: make(map[geo.ServerID]*pstNode, 4),
		counts:   make(map[geo.ServerID]int, 4),
	}
}

// Name implements Predictor.
func (m *Markov) Name() string { return "Markov" }

// Fit implements Predictor: builds the suffix tree from the discretized
// training trajectories.
func (m *Markov) Fit(train []trace.Trajectory, pl *geo.Placement, n int) error {
	if err := checkFitArgs(train, pl, n); err != nil {
		return err
	}
	if m.SubseqRatio <= 0 || m.SubseqRatio > 1 {
		m.SubseqRatio = 0.7
	}
	if m.MaxOrder <= 0 {
		m.MaxOrder = n
	}
	m.pl = pl
	m.n = n
	m.root = newPSTNode()

	for _, tr := range train {
		seq := discretize(tr.Points, pl)
		for i := 0; i < len(seq)-1; i++ {
			next := seq[i+1]
			// Insert every context suffix ending at i, up to MaxOrder.
			node := m.root
			node.counts[next]++
			for d := 0; d < m.MaxOrder && i-d >= 0; d++ {
				sym := seq[i-d]
				child, ok := node.children[sym]
				if !ok {
					child = newPSTNode()
					node.children[sym] = child
				}
				child.counts[next]++
				node = child
			}
		}
	}
	return nil
}

// Rank implements Predictor.
func (m *Markov) Rank(recent []geo.Point, k int) []geo.ServerID {
	if m.root == nil || len(recent) == 0 || k <= 0 {
		return nil
	}
	seq := discretize(recent, m.pl)

	// Longest matching context, walking backwards from the most recent
	// location.
	depth := 0
	node := m.root
	for d := 0; d < len(seq) && d < m.MaxOrder; d++ {
		child, ok := node.children[seq[len(seq)-1-d]]
		if !ok {
			break
		}
		node = child
		depth = d + 1
	}
	// Use only SubseqRatio of the longest match (Jacquet et al.): re-walk
	// to the truncated depth.
	use := int(float64(depth) * m.SubseqRatio)
	if use < 1 && depth >= 1 {
		use = 1
	}
	node = m.root
	for d := 0; d < use; d++ {
		node = node.children[seq[len(seq)-1-d]]
	}

	type cand struct {
		id geo.ServerID
		c  int
	}
	cands := make([]cand, 0, len(node.counts))
	for id, c := range node.counts {
		cands = append(cands, cand{id: id, c: c})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].c != cands[j].c {
			return cands[i].c > cands[j].c
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]geo.ServerID, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.id)
	}
	return out
}

// PredictPoint implements Predictor; the Markov model is not
// coordinate-based ("Markov predictor loses the exact location information
// of clients when mapping ... to a discrete edge server identifier").
func (m *Markov) PredictPoint([]geo.Point) (geo.Point, bool) {
	return geo.Point{}, false
}

// discretize maps each location to the nearest placed server.
func discretize(pts []geo.Point, pl *geo.Placement) []geo.ServerID {
	out := make([]geo.ServerID, 0, len(pts))
	for _, p := range pts {
		id := pl.ServerAt(p)
		if id == geo.NoServer {
			near := pl.Nearest(p, 1)
			if len(near) > 0 {
				id = near[0]
			}
		}
		out = append(out, id)
	}
	return out
}
