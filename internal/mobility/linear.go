package mobility

import (
	"perdnn/internal/geo"
	"perdnn/internal/trace"
)

// Linear is a training-free dead-reckoning predictor: the next location is
// the last location plus the most recent displacement. It is the natural
// lower bound for the learned predictors and the default for live
// deployments that have no training corpus yet.
type Linear struct {
	pl *geo.Placement
}

var _ Predictor = (*Linear)(nil)

// Name implements Predictor.
func (l *Linear) Name() string { return "Linear" }

// Fit implements Predictor; only the placement is retained.
func (l *Linear) Fit(train []trace.Trajectory, pl *geo.Placement, n int) error {
	if pl == nil {
		return checkFitArgs(train, pl, n)
	}
	l.pl = pl
	return nil
}

// FitPlacement configures the predictor without a training corpus.
func (l *Linear) FitPlacement(pl *geo.Placement) { l.pl = pl }

// PredictPoint implements Predictor.
func (l *Linear) PredictPoint(recent []geo.Point) (geo.Point, bool) {
	if len(recent) == 0 {
		return geo.Point{}, false
	}
	last := recent[len(recent)-1]
	if len(recent) == 1 {
		return last, true
	}
	prev := recent[len(recent)-2]
	return last.Add(last.Sub(prev)), true
}

// Rank implements Predictor.
func (l *Linear) Rank(recent []geo.Point, k int) []geo.ServerID {
	if l.pl == nil {
		return nil
	}
	pt, ok := l.PredictPoint(recent)
	if !ok {
		return nil
	}
	return l.pl.Nearest(pt, k)
}
