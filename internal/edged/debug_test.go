package edged

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"perdnn/internal/dnn"
	"perdnn/internal/obs"
	"perdnn/internal/wire"
)

// TestDebugEndpointServesDaemonMetrics: wiring a daemon's registry into the
// obs debug listener — exactly what perdnn-edge -debug-addr does — serves
// its live counters on /metrics and the pprof index on /debug/pprof/.
func TestDebugEndpointServesDaemonMetrics(t *testing.T) {
	addr, srv := startEdge(t, testConfig())
	dbg, err := obs.ServeDebug("127.0.0.1:0", srv.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := dbg.Close(); cerr != nil {
			t.Errorf("closing debug server: %v", cerr)
		}
	}()

	// Drive one request through the daemon so the counters move.
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.RoundTrip(&wire.Envelope{
		Type:   wire.MsgUploadLayers,
		Upload: &wire.Upload{ClientID: 1, Layers: []dnn.LayerID{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		t.Fatal("upload rejected")
	}

	get := func(path string) []byte {
		t.Helper()
		r, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if snap.Counters["requests_total"] < 1 {
		t.Errorf("requests_total = %d, want >= 1", snap.Counters["requests_total"])
	}
	if snap.Counters["uploads_total"] != 1 {
		t.Errorf("uploads_total = %d, want 1", snap.Counters["uploads_total"])
	}
	if !strings.Contains(string(get("/debug/pprof/")), "pprof") {
		t.Error("/debug/pprof/ does not serve the pprof index")
	}
}
