// Package edged implements the live edge-server daemon: it owns a simulated
// GPU, caches clients' DNN layers with TTL eviction, executes offloaded
// layer work under contention, reports nvml-style statistics to the master,
// and pushes layers to peer edge servers when the master orders a proactive
// migration.
package edged

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"sync"
	"time"

	"perdnn/internal/core"
	"perdnn/internal/dnn"
	"perdnn/internal/gpusim"
	"perdnn/internal/obs"
	"perdnn/internal/obs/tracing"
	"perdnn/internal/profile"
	"perdnn/internal/wire"
)

// Config parameterizes an edge daemon.
type Config struct {
	// Model is the zoo model whose layers this deployment serves (used to
	// size layer bitsets and price weights).
	Model dnn.ModelName
	// TTL is the cache lifetime of migrated/uploaded layers.
	TTL time.Duration
	// LinkBps prices declared transfers (client uploads, peer migrations).
	LinkBps float64
	// TimeScale compresses simulated durations into wall time (0.01 runs
	// 100x faster than real time). Zero disables sleeping entirely.
	TimeScale float64
	// GPUSeed seeds the simulated GPU.
	GPUSeed int64
	// Logger receives the daemon's structured log output; nil defaults to
	// info-level logging on stderr tagged with component=edged.
	Logger *slog.Logger
	// Tracer records request-scoped spans (exec queue/compute, uploads,
	// peer migrations); incoming envelopes that carry a span context link
	// this daemon's spans under the client's or master's trace. Nil
	// disables tracing.
	Tracer *tracing.Tracer
	// Node names this daemon's span track (e.g. "server/3"); empty
	// defaults to "edged". Only meaningful when Tracer is set.
	Node string
}

// DefaultConfig returns a demo-friendly configuration.
func DefaultConfig(model dnn.ModelName) Config {
	return Config{
		Model:     model,
		TTL:       100 * time.Second,
		LinkBps:   35e6,
		TimeScale: 0.01,
		GPUSeed:   1,
	}
}

// Server is a running edge daemon.
type Server struct {
	cfg   Config
	model *dnn.Model
	gpu   *gpusim.GPU
	start time.Time
	log   *slog.Logger
	met   *obs.Registry
	tr    *tracing.Tracer
	node  string     // span track name
	peers *wire.Pool // reused conns for migration pushes to peer edges

	mu    sync.Mutex
	cache map[int]*cacheEntry // by client ID

	ln        net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

type cacheEntry struct {
	layers map[dnn.LayerID]struct{}
	expiry time.Time
}

// New creates an edge daemon (not yet serving).
func New(cfg Config) (*Server, error) {
	m, err := dnn.ZooModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	if cfg.TTL <= 0 {
		return nil, errors.New("edged: TTL must be positive")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(os.Stderr, slog.LevelInfo, "edged")
	}
	node := cfg.Node
	if node == "" {
		node = "edged"
	}
	s := &Server{
		cfg:    cfg,
		model:  m,
		gpu:    gpusim.New(profile.ServerTitanXp(), gpusim.DefaultParams(), cfg.GPUSeed),
		start:  time.Now(),
		log:    logger,
		met:    obs.NewRegistry(),
		tr:     cfg.Tracer,
		node:   node,
		cache:  make(map[int]*cacheEntry, 8),
		closed: make(chan struct{}),
	}
	s.peers = wire.NewRegisteredPool(s.met, "peer")
	return s, nil
}

// Metrics exposes the daemon's metrics registry (requests, uploads, execs,
// peer migrations, peer-pool connection reuse) for the -debug-addr
// endpoint.
func (s *Server) Metrics() *obs.Registry { return s.met }

// Tracer exposes the daemon's span recorder (nil when tracing is off).
func (s *Server) Tracer() *tracing.Tracer { return s.tr }

// traceRoot resolves the trace and parent span for a request: the
// propagated context when the envelope carried one, otherwise a fresh
// local trace (so an untraced client still yields inspectable spans).
func (s *Server) traceRoot(rc tracing.SpanContext) (tracing.TraceID, tracing.SpanID) {
	if rc.Trace != 0 {
		return rc.Trace, rc.Span
	}
	return s.tr.NewTrace(), 0
}

// now returns the daemon's virtual time for the GPU model.
func (s *Server) now() time.Duration { return time.Since(s.start) }

// sleep realizes a simulated duration in scaled wall time.
func (s *Server) sleep(d time.Duration) {
	if s.cfg.TimeScale <= 0 || d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * s.cfg.TimeScale))
}

// ServeContext accepts connections on ln until Close is called or ctx is
// canceled. Connection handlers — including the peer dials that proactive
// migration orders trigger — inherit ctx, so canceling it interrupts
// in-flight exchanges, closes the listener, and drains.
func (s *Server) ServeContext(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		if err := s.Close(); err != nil {
			s.log.Warn("shutdown", "err", err)
		}
	})
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.wg.Wait()
				return nil
			default:
				return fmt.Errorf("edged: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, wire.NewConn(conn))
		}()
	}
}

// Serve accepts connections on ln until Close. It returns after the
// listener fails (normally because Close closed it).
//
// Deprecated: use ServeContext, which ties the daemon's lifetime and every
// in-flight exchange to the caller's context.
func (s *Server) Serve(ln net.Listener) error {
	//perdnn:vet-ignore ctxflow deprecated compatibility shim supplies the root context
	return s.ServeContext(context.Background(), ln)
}

// Close stops the daemon. It is idempotent and safe to call concurrently
// with ServeContext's own context-driven shutdown.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if perr := s.peers.Close(); perr != nil {
			s.log.Warn("closing peer pool", "err", perr)
		}
		s.mu.Lock()
		ln := s.ln
		s.mu.Unlock()
		if ln != nil {
			err = ln.Close()
		}
	})
	return err
}

// handle serves one connection until it errors or closes.
func (s *Server) handle(ctx context.Context, c *wire.Conn) {
	defer func() {
		if err := c.Close(); err != nil {
			s.log.Warn("closing conn", "err", err)
		}
	}()
	for {
		req, err := c.RecvContext(ctx)
		if err != nil {
			return // client went away, timed out, or the daemon is stopping
		}
		s.met.Counter("requests_total").Inc()
		resp := s.dispatch(ctx, req)
		if err := c.SendContext(ctx, resp); err != nil {
			return
		}
	}
}

func ack(err error) *wire.Envelope {
	if err != nil {
		return &wire.Envelope{Type: wire.MsgAck, Ack: &wire.Ack{OK: false, Error: err.Error()}}
	}
	return &wire.Envelope{Type: wire.MsgAck, Ack: &wire.Ack{OK: true}}
}

func (s *Server) dispatch(ctx context.Context, req *wire.Envelope) *wire.Envelope {
	switch req.Type {
	case wire.MsgStatsRequest:
		st := s.gpu.Sample(s.now())
		return &wire.Envelope{Type: wire.MsgStatsResponse, Stats: &wire.StatsMsg{Sample: &st}}
	case wire.MsgUploadLayers:
		if req.Upload == nil {
			return ack(errors.New("edged: upload without body"))
		}
		return ack(s.uploadTraced(req.Upload, req.Trace))
	case wire.MsgUploadUnit:
		// Streaming upload: same storage path as MsgUploadLayers, but the
		// ack echoes the unit's sequence number so the client can run a
		// windowed pipeline (acks are cumulative — units are processed in
		// arrival order, so acking seq N confirms everything through N).
		if req.Upload == nil {
			return &wire.Envelope{Type: wire.MsgUploadAck,
				Ack: &wire.Ack{OK: false, Error: "edged: upload without body"}}
		}
		seq := req.Upload.Seq
		if err := s.uploadTraced(req.Upload, req.Trace); err != nil {
			return &wire.Envelope{Type: wire.MsgUploadAck,
				Ack: &wire.Ack{OK: false, Error: err.Error(), Seq: seq}}
		}
		return &wire.Envelope{Type: wire.MsgUploadAck, Ack: &wire.Ack{OK: true, Seq: seq}}
	case wire.MsgExecRequest:
		if req.ExecReq == nil {
			return ack(errors.New("edged: exec without body"))
		}
		return s.exec(req.ExecReq, req.Trace)
	case wire.MsgForward:
		if req.Forward == nil || len(req.Forward.Hops) == 0 {
			return ack(errors.New("edged: forward without hops"))
		}
		return s.forward(ctx, req.Forward, req.Trace)
	case wire.MsgHasRequest:
		if req.Has == nil {
			return ack(errors.New("edged: has without body"))
		}
		return s.has(req.Has)
	case wire.MsgMigrateRequest:
		if req.Migrate == nil {
			return ack(errors.New("edged: migrate without body"))
		}
		return ack(s.migrate(ctx, req.Migrate, req.Trace))
	default:
		return ack(fmt.Errorf("edged: unexpected message type %d", req.Type))
	}
}

// upload stores declared layers, realizing the transfer time. Pricing is
// idempotent at the layer level: layers already cached cost nothing, so a
// client that resends a unit whose delivery it could not confirm (a
// connection killed between delivery and ack) is not double-charged —
// the cache claim under the lock is the exactly-once point, even when an
// old connection's handler is still draining buffered units concurrently
// with a resend on a fresh one.
// uploadTraced is upload plus a span on this daemon's track covering the
// cache claim and the realized transfer, linked under the sender's trace
// when the envelope carried one.
func (s *Server) uploadTraced(u *wire.Upload, rc tracing.SpanContext) error {
	trace, parent := s.traceRoot(rc)
	start := s.tr.Now()
	err := s.upload(u)
	s.tr.Record(trace, parent, tracing.StageUploadUnit, s.node, start, s.tr.Now())
	return err
}

func (s *Server) upload(u *wire.Upload) error {
	added := s.addLayers(u.ClientID, u.Layers)
	if len(added) == 0 {
		s.log.Debug("layers already cached", "client", u.ClientID, "layers", len(u.Layers))
		return nil
	}
	bytes := u.Bytes
	if bytes <= 0 || len(added) != len(u.Layers) {
		// No declared size, or a partial duplicate: price what was new.
		bytes = s.layerBytes(added)
	}
	s.met.Counter("uploads_total").Inc()
	s.met.Counter("upload_bytes_total").Add(bytes)
	s.log.Debug("layers uploaded", "client", u.ClientID, "layers", len(added), "bytes", bytes)
	s.sleep(time.Duration(float64(bytes) * 8 / s.cfg.LinkBps * float64(time.Second)))
	return nil
}

func (s *Server) layerBytes(ids []dnn.LayerID) int64 {
	var sum int64
	for _, id := range ids {
		if id >= 0 && int(id) < s.model.NumLayers() {
			sum += s.model.Layer(id).WeightBytes
		}
	}
	return sum
}

// addLayers claims ids in the client's cache entry and returns the subset
// that was newly added (not already live in the cache).
func (s *Server) addLayers(client int, ids []dnn.LayerID) []dnn.LayerID {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[client]
	if !ok || time.Now().After(e.expiry) {
		e = &cacheEntry{layers: make(map[dnn.LayerID]struct{}, len(ids))}
		s.cache[client] = e
	}
	added := make([]dnn.LayerID, 0, len(ids))
	for _, id := range ids {
		if _, dup := e.layers[id]; dup {
			continue
		}
		e.layers[id] = struct{}{}
		added = append(added, id)
	}
	e.expiry = time.Now().Add(s.cfg.TTL)
	return added
}

// cachedLayers returns the client's live cached layers.
func (s *Server) cachedLayers(client int) map[dnn.LayerID]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[client]
	if !ok || time.Now().After(e.expiry) {
		delete(s.cache, client)
		return nil
	}
	return e.layers
}

// exec performs the offloaded part of a query under the live GPU load.
// Two spans on this daemon's track — exec.queue (input transfer and wait
// for the GPU) and exec.compute (kernel time) — link under the client's
// query trace when the request carried a span context.
func (s *Server) exec(r *wire.ExecReq, rc tracing.SpanContext) *wire.Envelope {
	trace, parent := s.traceRoot(rc)
	qStart := s.tr.Now()
	// Input transfer.
	s.sleep(time.Duration(float64(r.InputBytes) * 8 / s.cfg.LinkBps * float64(time.Second)))
	s.gpu.Begin(s.now())
	cStart := s.tr.Now()
	s.tr.Record(trace, parent, tracing.StageExecQueue, s.node, qStart, cStart)
	exec := s.gpu.ExecTime(time.Duration(r.ServerBaseNs), r.Intensity, s.now())
	s.sleep(exec)
	s.gpu.End()
	s.tr.Record(trace, parent, tracing.StageExecCompute, s.node, cStart, s.tr.Now())
	s.met.Counter("execs_total").Inc()
	s.met.Histogram("exec_ns").ObserveDuration(exec)
	return &wire.Envelope{Type: wire.MsgExecResponse, ExecResp: &wire.ExecResp{ExecNs: int64(exec)}}
}

// forward executes the first hop of a multi-hop pipelined query on this
// server's GPU, then relays the remaining chain to the next hop and folds
// the downstream reply into one end-to-end ExecResp, so the client sees a
// single answer per query. The span context rides the relay (the migrate
// pattern): the next hop's spans parent under this node's transfer.hop
// span, chaining every stage under the client's query trace.
func (s *Server) forward(ctx context.Context, f *wire.Forward, rc tracing.SpanContext) *wire.Envelope {
	trace, parent := s.traceRoot(rc)
	hop := f.Hops[0]
	qStart := s.tr.Now()
	// Ingress activation transfer, realized against this server's link (the
	// sender accounts the duration; this side realizes the wall time).
	s.sleep(time.Duration(float64(hop.InBytes) * 8 / s.cfg.LinkBps * float64(time.Second)))
	s.gpu.Begin(s.now())
	cStart := s.tr.Now()
	s.tr.Record(trace, parent, tracing.StageExecQueue, s.node, qStart, cStart)
	exec := s.gpu.ExecTime(time.Duration(hop.ServerBaseNs), hop.Intensity, s.now())
	s.sleep(exec)
	s.gpu.End()
	s.tr.Record(trace, parent, tracing.StageExecCompute, s.node, cStart, s.tr.Now())
	s.met.Counter("execs_total").Inc()
	s.met.Histogram("exec_ns").ObserveDuration(exec)
	total := exec
	if len(f.Hops) > 1 {
		next := f.Hops[1]
		// Egress activation transfer edge→edge, priced against this
		// server's link and realized by the receiving hop.
		total += time.Duration(float64(next.InBytes) * 8 / s.cfg.LinkBps * float64(time.Second))
		span := s.tr.NewSpanID()
		hStart := s.tr.Now()
		fctx, cancel := context.WithTimeout(ctx, wire.DefaultRecvTimeout)
		resp, err := s.peers.RoundTrip(fctx, next.Addr, &wire.Envelope{
			Type:    wire.MsgForward,
			Forward: &wire.Forward{ClientID: f.ClientID, Hops: f.Hops[1:], DownBytes: f.DownBytes},
			Trace:   tracing.SpanContext{Trace: trace, Span: span},
		})
		cancel()
		if err != nil {
			s.met.Counter("forward_failures_total").Inc()
			return ack(fmt.Errorf("edged: forwarding to %s: %w: %w", next.Addr, core.ErrServerDown, err))
		}
		if resp.Type != wire.MsgExecResponse || resp.ExecResp == nil {
			s.met.Counter("forward_failures_total").Inc()
			msg := "no ack"
			if resp.Ack != nil {
				msg = resp.Ack.Error
			}
			return ack(fmt.Errorf("edged: hop %s failed: %s", next.Addr, msg))
		}
		total += time.Duration(resp.ExecResp.ExecNs)
		s.tr.RecordWith(trace, span, parent, tracing.StageTransferHop, s.node, hStart, s.tr.Now())
	}
	s.met.Counter("forwards_total").Inc()
	return &wire.Envelope{Type: wire.MsgExecResponse,
		ExecResp: &wire.ExecResp{ExecNs: int64(total), OutputBytes: f.DownBytes}}
}

// has filters the asked layers down to those cached.
func (s *Server) has(h *wire.Has) *wire.Envelope {
	cached := s.cachedLayers(h.ClientID)
	present := make([]dnn.LayerID, 0, len(h.Layers))
	for _, id := range h.Layers {
		if _, ok := cached[id]; ok {
			present = append(present, id)
		}
	}
	return &wire.Envelope{Type: wire.MsgHasResponse, Has: &wire.Has{ClientID: h.ClientID, Layers: present}}
}

// migrate pushes the client's cached subset of the requested layers to a
// peer edge server ("if the current edge server does not have all of the
// server-side layers, it sends layers as many as possible").
func (s *Server) migrate(ctx context.Context, m *wire.Migrate, rc tracing.SpanContext) error {
	cached := s.cachedLayers(m.ClientID)
	if len(cached) == 0 {
		return nil // nothing to send; not an error
	}
	send := make([]dnn.LayerID, 0, len(m.Layers))
	var bytes int64
	for _, id := range m.Layers {
		if _, ok := cached[id]; !ok {
			continue
		}
		w := s.model.Layer(id).WeightBytes
		if m.CapBytes > 0 && bytes+w > m.CapBytes {
			break
		}
		send = append(send, id)
		bytes += w
	}
	if len(send) == 0 {
		return nil
	}
	s.met.Counter("migrations_total").Inc()
	s.met.Counter("migration_bytes_total").Add(bytes)
	s.log.Debug("migrating layers", "client", m.ClientID, "peer", m.PeerAddr,
		"layers", len(send), "bytes", bytes)
	ctx, cancel := context.WithTimeout(ctx, wire.DefaultSendTimeout)
	defer cancel()
	// The push span joins the master's order trace, and its context rides
	// the peer upload so the receiving daemon's span links under it too —
	// a full cross-node chain master → source edge → target edge.
	trace, parent := s.traceRoot(rc)
	span := s.tr.NewSpanID()
	start := s.tr.Now()
	// Migration pushes to the same few peers recur as clients move; the
	// pool reuses warm connections instead of dialing per order.
	resp, err := s.peers.RoundTrip(ctx, m.PeerAddr, &wire.Envelope{
		Type:   wire.MsgUploadLayers,
		Upload: &wire.Upload{ClientID: m.ClientID, Layers: send, Bytes: bytes},
		Trace:  tracing.SpanContext{Trace: trace, Span: span},
	})
	if err != nil {
		return fmt.Errorf("edged: migrating to %s: %w: %w", m.PeerAddr, core.ErrServerDown, err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		return fmt.Errorf("edged: peer %s rejected migration", m.PeerAddr)
	}
	s.tr.RecordWith(trace, span, parent, tracing.StageMigrate, s.node, start, s.tr.Now())
	return nil
}
