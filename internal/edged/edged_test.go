package edged

import (
	"net"
	"testing"
	"time"

	"perdnn/internal/dnn"
	"perdnn/internal/wire"
)

// startEdge runs an edge daemon on a random port.
func startEdge(t *testing.T, cfg Config) (string, *Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil {
			t.Errorf("serve: %v", serr)
		}
	}()
	t.Cleanup(func() {
		if cerr := srv.Close(); cerr != nil {
			t.Logf("close: %v", cerr)
		}
	})
	return ln.Addr().String(), srv
}

func testConfig() Config {
	cfg := DefaultConfig(dnn.ModelMobileNet)
	cfg.TimeScale = 0 // no sleeping in unit tests
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig("bogus")); err == nil {
		t.Error("unknown model accepted")
	}
	cfg := DefaultConfig(dnn.ModelMobileNet)
	cfg.TTL = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	addr, _ := startEdge(t, testConfig())
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown
	resp, err := conn.RoundTrip(&wire.Envelope{Type: wire.MsgStatsRequest})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgStatsResponse || resp.Stats == nil || resp.Stats.Sample == nil {
		t.Fatalf("bad response %+v", resp)
	}
	if resp.Stats.Sample.TempC <= 0 {
		t.Errorf("stats %+v", resp.Stats.Sample)
	}
}

func TestUploadHasExec(t *testing.T) {
	addr, _ := startEdge(t, testConfig())
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown

	// Nothing cached initially.
	resp, err := conn.RoundTrip(&wire.Envelope{
		Type: wire.MsgHasRequest,
		Has:  &wire.Has{ClientID: 1, Layers: []dnn.LayerID{0, 1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Has.Layers) != 0 {
		t.Errorf("cold cache has %v", resp.Has.Layers)
	}

	// Upload two layers, then check presence.
	resp, err = conn.RoundTrip(&wire.Envelope{
		Type:   wire.MsgUploadLayers,
		Upload: &wire.Upload{ClientID: 1, Layers: []dnn.LayerID{0, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		t.Fatalf("upload rejected: %+v", resp)
	}
	resp, err = conn.RoundTrip(&wire.Envelope{
		Type: wire.MsgHasRequest,
		Has:  &wire.Has{ClientID: 1, Layers: []dnn.LayerID{0, 1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Has.Layers) != 2 {
		t.Errorf("cached layers %v, want [0 2]", resp.Has.Layers)
	}
	// Another client sees nothing.
	resp, err = conn.RoundTrip(&wire.Envelope{
		Type: wire.MsgHasRequest,
		Has:  &wire.Has{ClientID: 2, Layers: []dnn.LayerID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Has.Layers) != 0 {
		t.Error("cache leaked across clients")
	}

	// Execute some offloaded work.
	resp, err = conn.RoundTrip(&wire.Envelope{
		Type:    wire.MsgExecRequest,
		ExecReq: &wire.ExecReq{ClientID: 1, ServerBaseNs: int64(5 * time.Millisecond), Intensity: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgExecResponse || resp.ExecResp == nil || resp.ExecResp.ExecNs <= 0 {
		t.Fatalf("bad exec response %+v", resp)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.TTL = 50 * time.Millisecond
	addr, _ := startEdge(t, cfg)
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown
	if _, err := conn.RoundTrip(&wire.Envelope{
		Type:   wire.MsgUploadLayers,
		Upload: &wire.Upload{ClientID: 1, Layers: []dnn.LayerID{0}},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	resp, err := conn.RoundTrip(&wire.Envelope{
		Type: wire.MsgHasRequest,
		Has:  &wire.Has{ClientID: 1, Layers: []dnn.LayerID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Has.Layers) != 0 {
		t.Error("layer survived TTL")
	}
}

func TestMigrateToPeer(t *testing.T) {
	addrA, _ := startEdge(t, testConfig())
	addrB, _ := startEdge(t, testConfig())

	connA, err := wire.Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close() //nolint:errcheck // test teardown

	// Seed A with layers 0..4, then order migration of 0..9 with a cap.
	if _, err := connA.RoundTrip(&wire.Envelope{
		Type:   wire.MsgUploadLayers,
		Upload: &wire.Upload{ClientID: 9, Layers: []dnn.LayerID{0, 1, 2, 3, 4}},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := connA.RoundTrip(&wire.Envelope{
		Type: wire.MsgMigrateRequest,
		Migrate: &wire.Migrate{
			ClientID: 9,
			Layers:   []dnn.LayerID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
			PeerAddr: addrB,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		t.Fatalf("migrate rejected: %+v", resp)
	}

	connB, err := wire.Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close() //nolint:errcheck // test teardown
	has, err := connB.RoundTrip(&wire.Envelope{
		Type: wire.MsgHasRequest,
		Has:  &wire.Has{ClientID: 9, Layers: []dnn.LayerID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the layers A actually had (0..4) arrive at B.
	if len(has.Has.Layers) != 5 {
		t.Errorf("B cached %v, want the 5 layers A had", has.Has.Layers)
	}
}

func TestMigrateWithNothingCachedIsNoop(t *testing.T) {
	addrA, _ := startEdge(t, testConfig())
	connA, err := wire.Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close() //nolint:errcheck // test teardown
	resp, err := connA.RoundTrip(&wire.Envelope{
		Type: wire.MsgMigrateRequest,
		Migrate: &wire.Migrate{
			ClientID: 1,
			Layers:   []dnn.LayerID{0},
			PeerAddr: "127.0.0.1:1", // unreachable, but nothing to send
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !resp.Ack.OK {
		t.Errorf("empty migration should succeed: %+v", resp)
	}
}

func TestUnknownMessageAcksError(t *testing.T) {
	addr, _ := startEdge(t, testConfig())
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck // test teardown
	resp, err := conn.RoundTrip(&wire.Envelope{Type: wire.MsgPlanRequest})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || resp.Ack.OK {
		t.Errorf("unexpected message not rejected: %+v", resp)
	}
}
