module perdnn

go 1.22
