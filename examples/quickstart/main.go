// Quickstart: load a zoo model, partition it between the paper's client
// board and edge server, and print the plan and its efficiency-ordered
// upload schedule.
package main

import (
	"fmt"
	"os"
	"time"

	"perdnn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	model, err := perdnn.LoadModel(perdnn.ModelInception)
	if err != nil {
		return err
	}
	fmt.Println("model:   ", model)

	prof := perdnn.NewProfile(model)
	fmt.Printf("local:    %v on %s\n", prof.TotalClientTime().Round(time.Millisecond), perdnn.ClientDevice().Name)
	fmt.Printf("remote:   %v on %s (plus transfers)\n", prof.TotalServerBase().Round(time.Millisecond), perdnn.ServerDevice().Name)

	// Plan at three contention levels: idle server, moderately loaded, and
	// heavily contended.
	for _, slowdown := range []float64{1, 4, 40} {
		plan, err := perdnn.Plan(prof, perdnn.WithSlowdown(slowdown))
		if err != nil {
			return err
		}
		fmt.Printf("slowdown %5.0fx: %v\n", slowdown, plan.Split())
	}

	plan, err := perdnn.Plan(prof) // defaults: idle server, lab Wi-Fi
	if err != nil {
		return err
	}
	units, err := plan.UploadSchedule()
	if err != nil {
		return err
	}
	fmt.Println("\nefficiency-first upload schedule:")
	var cum int64
	for i, u := range units {
		cum += u.Bytes
		fmt.Printf("  unit %d: layers %d..%d, %6.2f MB (cumulative %6.2f MB)\n",
			i, u.Layers[0], u.Layers[len(u.Layers)-1],
			float64(u.Bytes)/(1<<20), float64(cum)/(1<<20))
	}

	// Pipeline the model across a chain of three loaded servers for
	// throughput: sustained query rate is bounded by the slowest stage, so
	// splitting the server work across hops beats any single split.
	chain, err := perdnn.Plan(prof,
		perdnn.WithObjective(perdnn.ObjectiveThroughput),
		perdnn.WithMaxHops(3),
		perdnn.WithServers(
			perdnn.ServerSpec{ID: 0, Slowdown: 4},
			perdnn.ServerSpec{ID: 1, Slowdown: 4},
			perdnn.ServerSpec{ID: 2, Slowdown: 4}))
	if err != nil {
		return err
	}
	fmt.Println("\npipelined across 3 loaded servers:", chain)
	for i, hop := range chain.Hops {
		fmt.Printf("  hop %d on server %d: %d layers, stage %v\n",
			i, hop.Server.ID, len(hop.Layers), (hop.Transfer + hop.Exec).Round(time.Millisecond))
	}
	return nil
}
