// Quickstart: load a zoo model, partition it between the paper's client
// board and edge server, and print the plan and its efficiency-ordered
// upload schedule.
package main

import (
	"fmt"
	"os"
	"time"

	"perdnn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	model, err := perdnn.LoadModel(perdnn.ModelInception)
	if err != nil {
		return err
	}
	fmt.Println("model:   ", model)

	prof := perdnn.NewProfile(model)
	fmt.Printf("local:    %v on %s\n", prof.TotalClientTime().Round(time.Millisecond), perdnn.ClientDevice().Name)
	fmt.Printf("remote:   %v on %s (plus transfers)\n", prof.TotalServerBase().Round(time.Millisecond), perdnn.ServerDevice().Name)

	// Partition at three contention levels: idle server, moderately
	// loaded, and heavily contended.
	for _, slowdown := range []float64{1, 4, 40} {
		plan, err := perdnn.Partition(prof, perdnn.WithSlowdown(slowdown))
		if err != nil {
			return err
		}
		fmt.Printf("slowdown %5.0fx: %v\n", slowdown, plan)
	}

	plan, err := perdnn.Partition(prof) // defaults: idle server, lab Wi-Fi
	if err != nil {
		return err
	}
	units, err := perdnn.UploadSchedule(prof, plan)
	if err != nil {
		return err
	}
	fmt.Println("\nefficiency-first upload schedule:")
	var cum int64
	for i, u := range units {
		cum += u.Bytes
		fmt.Printf("  unit %d: layers %d..%d, %6.2f MB (cumulative %6.2f MB)\n",
			i, u.Layers[0], u.Layers[len(u.Layers)-1],
			float64(u.Bytes)/(1<<20), float64(cum)/(1<<20))
	}
	return nil
}
