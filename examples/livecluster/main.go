// Live cluster: spins up a master daemon and two edge daemons over
// localhost TCP, then drives a real client through the full PerDNN
// lifecycle — register, cold connect, incremental upload, queries,
// trajectory reports triggering proactive migration, and a warm reconnect
// at the predicted next server.
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"perdnn/internal/dnn"
	"perdnn/internal/edged"
	"perdnn/internal/geo"
	"perdnn/internal/master"
	"perdnn/internal/mobile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
}

func run() error {
	const timeScale = 0.002 // 500x faster than real time

	// Two edge servers in adjacent 50 m cells.
	grid := geo.NewHexGrid(50)
	locs := []geo.Point{grid.Center(geo.HexCell{Q: 0, R: 0}), grid.Center(geo.HexCell{Q: 1, R: 0})}
	edges := make([]master.EdgeInfo, 0, len(locs))
	for i, loc := range locs {
		cfg := edged.DefaultConfig(dnn.ModelInception)
		cfg.TimeScale = timeScale
		cfg.GPUSeed = int64(i + 1)
		srv, err := edged.New(cfg)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln) //nolint:errcheck // daemon lives for the process
		edges = append(edges, master.EdgeInfo{Addr: ln.Addr().String(), Location: loc})
		fmt.Printf("edge %d listening on %s at (%.0f,%.0f)\n", i, ln.Addr(), loc.X, loc.Y)
	}

	mcfg := master.DefaultConfig(edges)
	m, err := master.New(mcfg)
	if err != nil {
		return err
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go m.Serve(mln) //nolint:errcheck // daemon lives for the process
	fmt.Printf("master listening on %s\n\n", mln.Addr())

	client, err := mobile.Dial(mobile.Config{
		ID:         1,
		Model:      dnn.ModelInception,
		MasterAddr: mln.Addr().String(),
		TimeScale:  timeScale,
	})
	if err != nil {
		return err
	}
	defer client.Close() //nolint:errcheck // process exits right after

	pl := m.Placement()
	serverA := pl.ServerAt(edges[0].Location)
	serverB := pl.ServerAt(edges[1].Location)

	fmt.Println("== connect to edge A (cold) ==")
	if err := client.Connect(serverA, edges[0].Addr); err != nil {
		return err
	}
	present, total := client.CacheState()
	fmt.Printf("cached %d/%d plan layers (miss): queries run mostly locally\n", present, total)
	lat, err := client.Query()
	if err != nil {
		return err
	}
	fmt.Printf("first query: %v\n", lat.Round(time.Millisecond))

	fmt.Println("\n== incremental upload ==")
	for step := 1; ; step++ {
		more, err := client.UploadStep()
		if err != nil {
			return err
		}
		if !more {
			break
		}
		lat, err := client.Query()
		if err != nil {
			return err
		}
		present, total = client.CacheState()
		fmt.Printf("after unit %d (%d/%d layers): query %v\n",
			step, present, total, lat.Round(time.Millisecond))
	}

	fmt.Println("\n== walking toward edge B; master migrates proactively ==")
	a := edges[0].Location
	for i := 0; i < 5; i++ {
		if err := client.ReportLocation(geo.Point{X: a.X + float64(i)*8, Y: a.Y}); err != nil {
			return err
		}
	}

	fmt.Println("\n== reconnect at edge B ==")
	if err := client.Connect(serverB, edges[1].Addr); err != nil {
		return err
	}
	present, total = client.CacheState()
	state := "miss"
	switch {
	case present == total:
		state = "hit — no cold start"
	case present > 0:
		state = "partial"
	}
	fmt.Printf("cached %d/%d plan layers (%s)\n", present, total, state)
	lat, err = client.Query()
	if err != nil {
		return err
	}
	fmt.Printf("first query at B: %v\n", lat.Round(time.Millisecond))
	return nil
}
