// Smart city: a compact version of the paper's large-scale simulation
// (Section IV.B). Dozens of mobile users play back campus trajectories over
// a hexagonal grid of GPU edge servers; the example contrasts the IONN
// baseline, PerDNN, and the always-cached optimum on cold-start behaviour
// and backhaul traffic.
package main

import (
	"fmt"
	"os"
	"time"

	"perdnn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smartcity:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("generating campus mobility dataset and preparing the city...")
	base, err := perdnn.GenerateKAIST()
	if err != nil {
		return err
	}
	env, err := perdnn.PrepareCity(base)
	if err != nil {
		return err
	}
	fmt.Printf("%d edge servers, %d mobile users, mean speed %.1f m/s\n\n",
		env.Placement.Len(), len(env.Dataset.Test), env.Dataset.MeanSpeed())

	fmt.Printf("%-26s %10s %8s %12s %12s\n", "system", "windowQ", "hit%", "cold starts", "peak uplink")
	for _, s := range []struct {
		label  string
		mode   int
		radius float64
	}{
		{"IONN baseline", 1, 0},
		{"PerDNN r=50m", 2, 50},
		{"PerDNN r=100m", 2, 100},
		{"Optimal (always cached)", 3, 0},
	} {
		mode := perdnn.ModeIONN
		switch s.mode {
		case 2:
			mode = perdnn.ModePerDNN
		case 3:
			mode = perdnn.ModeOptimal
		}
		cfg := perdnn.CityDefaults(perdnn.ModelResNet, mode, s.radius)
		cfg.MaxSteps = 360 // two simulated hours at t = 20 s
		t0 := time.Now()
		res, err := perdnn.RunCity(env, cfg)
		if err != nil {
			return err
		}
		_, peakUp := res.Traffic.PeakUp()
		fmt.Printf("%-26s %10d %7.0f%% %12d %9.0f Mbps   (%v)\n",
			s.label, res.WindowQueries, res.HitRatio()*100, res.Misses,
			peakUp/1e6, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
