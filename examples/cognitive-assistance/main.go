// Cognitive assistance: the paper's motivating application (Section IV) —
// a wearable device continuously recognizes objects for a visually-impaired
// user while walking between Wi-Fi hotspots. This example replays the Fig 7
// scenario: DNN queries every 0.5 s while the user moves from one edge
// server to another, comparing the IONN baseline against PerDNN's proactive
// migration (full and fractional).
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"perdnn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cognitive-assistance:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Mobile cognitive assistance on Inception-21k: 40 queries, the user")
	fmt.Println("changes hotspots before query 21.")
	fmt.Println()

	variants := []struct {
		name     string
		fraction float64
	}{
		{"IONN (no proactive migration)", 0},
		{"PerDNN, 14% of layers pre-migrated", 0.14},
		{"PerDNN, full model pre-migrated", 1},
	}
	for _, v := range variants {
		cfg := perdnn.SingleDefaults(perdnn.ModelInception)
		cfg.MigrateFraction = v.fraction
		res, err := perdnn.RunSingle(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s (migrated %.1f MB) ---\n", v.name, float64(res.MigratedBytes)/(1<<20))
		printSeries(res, cfg.SwitchAfterQueries)
		fmt.Printf("worst frame gap after the switch: %v\n\n",
			res.PeakAfterSwitch().Round(time.Millisecond))
	}
	return nil
}

// printSeries renders the per-query latencies as an ASCII strip chart.
func printSeries(res *perdnn.SingleResult, switchAt int) {
	var max time.Duration
	for _, q := range res.Queries {
		if q.Latency > max {
			max = q.Latency
		}
	}
	for i, q := range res.Queries {
		bar := int(float64(q.Latency) / float64(max) * 50)
		marker := ""
		if i == switchAt {
			marker = " <- hotspot change"
		}
		fmt.Printf("q%02d %8v |%s%s\n", i+1, q.Latency.Round(time.Millisecond),
			strings.Repeat("#", bar), marker)
	}
}
